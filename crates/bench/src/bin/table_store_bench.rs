//! Cross-run table-store warm-start benchmark: synthesizes the heaviest
//! rack/node/GPU placement cold, snapshots the search tables through
//! [`p2_core::TableStore`], warm-starts a fresh synthesizer from the
//! snapshot, and gates on the warm/cold speedup.
//!
//! The program counts of both runs are asserted bit-identical (and, at the
//! default size 7 count-only, against the pinned constant the synthesis
//! smoke run uses), so the gate can never pass on a snapshot that changes
//! results.
//!
//! Usage: `cargo run --release -p p2_bench --bin table_store_bench --`
//! `[--size N] [--repeats N] [--min-speedup X] [--json PATH]`
//!
//! `--min-speedup X` exits nonzero if the best-of-`--repeats` warm run is
//! not at least `X` times faster than the best cold run — the CI `tables`
//! job runs with `--min-speedup 2`.

use std::sync::Arc;
use std::time::Instant;

use p2_collectives::SharedTables;
use p2_core::{TableSnapshot, TableStore, TableStoreStats, P2};
use p2_placement::enumerate_matrices;
use p2_synthesis::{HierarchyKind, MemoBank, Synthesizer};
use p2_topology::presets;

/// Pinned size-7 count of the rack case (see `synthesis_smoke`).
const PIN_RACK_7: u64 = 8749;

fn parse_args() -> (usize, usize, Option<f64>, Option<String>) {
    let mut size = 7usize;
    let mut repeats = 3usize;
    let mut min_speedup = None;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--size" => {
                let value = args.next().expect("--size takes a value");
                size = value.parse().expect("--size takes an integer");
            }
            "--repeats" => {
                let value = args.next().expect("--repeats takes a value");
                repeats = value.parse().expect("--repeats takes an integer");
            }
            "--min-speedup" => {
                let value = args.next().expect("--min-speedup takes a value");
                min_speedup = Some(value.parse().expect("--min-speedup takes a number"));
            }
            "--json" => json_path = Some(args.next().expect("--json takes a path")),
            other => panic!("unknown argument: {other} (see the doc comment for usage)"),
        }
    }
    (
        size,
        repeats,
        min_speedup.filter(|s: &f64| *s > 0.0),
        json_path,
    )
}

fn main() {
    let (size, repeats, min_speedup, json_path) = parse_args();
    let repeats = repeats.max(1);
    let rack = presets::rack_node_gpu_system(2, 2, 4);
    let matrix = enumerate_matrices(&rack.hierarchy().arities(), &[16])
        .expect("rack axes fit the system")
        .into_iter()
        .next()
        .expect("at least one rack placement");
    // The real table key of this configuration — what the pipeline would
    // use, so the snapshot on disk is interchangeable with a sweep's.
    let key = P2::builder(rack)
        .parallelism_axes([16])
        .reduction_axes([0])
        .max_program_size(size)
        .build()
        .expect("valid rack session")
        .config()
        .table_key();

    let dir = std::env::temp_dir().join(format!("p2-table-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = TableStore::new(&dir);
    let synthesizer = |tables: &Arc<SharedTables>, bank: &Arc<MemoBank>| {
        Synthesizer::new(matrix.clone(), vec![0], HierarchyKind::ReductionAxes)
            .expect("valid rack synthesizer")
            .with_shared_tables(Arc::clone(tables))
            .with_memo_bank(Arc::clone(bank))
    };

    println!("Table-store warm-start bench: rack size {size} count-only, best of {repeats}\n");

    // Cold runs: fresh tables and bank every repeat, snapshot saved once.
    let mut cold_ms = f64::INFINITY;
    let mut cold_total = 0u64;
    let mut save_ms = 0.0;
    for repeat in 0..repeats {
        let tables = Arc::new(SharedTables::new());
        let bank = Arc::new(MemoBank::new());
        let synth = synthesizer(&tables, &bank);
        let start = Instant::now();
        let count = synth.count_programs(size);
        cold_ms = cold_ms.min(start.elapsed().as_secs_f64() * 1e3);
        cold_total = count.total;
        if repeat == 0 {
            let start = Instant::now();
            let snapshot = TableSnapshot::capture(Some(&tables), &bank);
            assert!(!snapshot.is_empty(), "cold run produced an empty snapshot");
            store.save(key, &snapshot).expect("saving the snapshot");
            save_ms = start.elapsed().as_secs_f64() * 1e3;
        }
    }
    if size == 7 {
        assert_eq!(
            cold_total, PIN_RACK_7,
            "cold count diverged from the pinned constant"
        );
    }

    // Warm runs: fresh tables and bank every repeat, both loaded from the
    // snapshot before the clock starts on the count itself.
    let mut warm_ms = f64::INFINITY;
    let mut load_ms = 0.0;
    let mut warm_total = 0u64;
    let mut warm_stats = TableStoreStats::default();
    for _ in 0..repeats {
        let tables = Arc::new(SharedTables::new());
        let bank = Arc::new(MemoBank::new());
        let start = Instant::now();
        let snapshot = store.load(key).expect("snapshot loads back");
        let mut stats = TableStoreStats::default();
        snapshot.install(Some(&tables), &bank, &mut stats);
        load_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(stats.warm_states > 0, "snapshot warmed no states");
        warm_stats = stats;
        let synth = synthesizer(&tables, &bank);
        let start = Instant::now();
        let count = synth.count_programs(size);
        warm_ms = warm_ms.min(start.elapsed().as_secs_f64() * 1e3);
        warm_total = count.total;
    }
    assert_eq!(
        warm_total, cold_total,
        "warm-started count diverged from the cold count"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let speedup = cold_ms / warm_ms.max(1e-6);
    println!(
        "cold  {cold_ms:.3} ms ({cold_total} programs; snapshot save {save_ms:.3} ms)\n\
         warm  {warm_ms:.3} ms ({warm_total} programs; snapshot load {load_ms:.3} ms,\n\
         \x20      {} states / {} apply entries / {} memo entries warmed)\n\
         speedup {speedup:.1}x",
        warm_stats.warm_states, warm_stats.warm_apply_entries, warm_stats.warm_memo_entries,
    );

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"bench\": \"table_store_bench\",\n  \"max_program_size\": {size},\n  \
             \"repeats\": {repeats},\n  \"programs\": {cold_total},\n  \
             \"cold_ms\": {cold_ms:.3},\n  \"warm_ms\": {warm_ms:.3},\n  \
             \"save_ms\": {save_ms:.3},\n  \"load_ms\": {load_ms:.3},\n  \
             \"speedup\": {speedup:.3},\n  \"warm_states\": {},\n  \
             \"warm_apply_entries\": {},\n  \"warm_memo_entries\": {}\n}}\n",
            warm_stats.warm_states, warm_stats.warm_apply_entries, warm_stats.warm_memo_entries,
        );
        std::fs::write(&path, json).expect("writing the JSON report");
        println!("\nwrote {path}");
    }

    if let Some(gate) = min_speedup {
        assert!(
            speedup >= gate,
            "warm-start speedup {speedup:.2}x is below the {gate:.2}x gate"
        );
        println!("\nok: warm start is {speedup:.1}x faster (gate {gate:.1}x)");
    }
}
