//! Reproduces the paper's **appendix Table** (full experiment results): for
//! every system, node count, parallelism-axes combination and reduction axis,
//! the synthesis time, program counts, and AllReduce vs. optimal program for
//! both NCCL algorithms.
//!
//! This is the full sweep behind the Result 1 (448×) and Result 5 (69 % of
//! mappings, average 1.27×) headlines; expect a few minutes of runtime.
//!
//! Run with `cargo run --release -p p2-bench --bin appendix_table`
//! `[-- --threads N]`.

use p2_bench::{
    appendix_axes, fmt_s, fmt_speedup, run_specs_batch, threads_from_args, total_placements,
    ExperimentSpec, SpeedupSummary, SystemKind,
};
use p2_core::{BatchOptions, ExperimentResult, ProgressObserver};
use p2_cost::{CostModelKind, NcclAlgo};

/// Every (system, nodes) block the appendix sweeps, in print order.
const BLOCKS: [(SystemKind, usize); 4] = [
    (SystemKind::A100, 2),
    (SystemKind::A100, 4),
    (SystemKind::V100, 2),
    (SystemKind::V100, 4),
];

/// A ring spec and its tree twin, run and printed side by side.
type SpecPair = (ExperimentSpec, ExperimentSpec);

/// One block's (ring, tree) spec pairs, in print order — the single source of
/// the sweep's nesting, shared by the progress total and the main loop.
fn block_pairs(system: SystemKind, nodes: usize) -> Vec<SpecPair> {
    let mut pairs = Vec::new();
    for (axes, reductions) in appendix_axes(system, nodes) {
        for reduction in reductions {
            let spec = |algo| {
                ExperimentSpec::new("ap", system, nodes, axes.clone(), reduction.clone(), algo)
            };
            pairs.push((spec(NcclAlgo::Ring), spec(NcclAlgo::Tree)));
        }
    }
    pairs
}

fn print_block(result_ring: &ExperimentResult, result_tree: &ExperimentResult) {
    for (i, (ring_pl, tree_pl)) in result_ring
        .placements
        .iter()
        .zip(&result_tree.placements)
        .enumerate()
    {
        assert_eq!(ring_pl.matrix, tree_pl.matrix);
        let first = i == 0;
        println!(
            "    {:<22} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8} {:>10} {:>10}",
            ring_pl.matrix.to_string(),
            if first {
                format!(
                    "{}/{}",
                    result_ring.total_programs_beating_allreduce(),
                    result_ring.total_programs()
                )
            } else {
                String::new()
            },
            if first {
                format!(
                    "{}/{}",
                    result_tree.total_programs_beating_allreduce(),
                    result_tree.total_programs()
                )
            } else {
                String::new()
            },
            fmt_s(ring_pl.allreduce_measured),
            fmt_s(tree_pl.allreduce_measured),
            fmt_s(ring_pl.optimal_measured()),
            fmt_s(tree_pl.optimal_measured()),
            fmt_speedup(ring_pl.speedup()),
            fmt_speedup(tree_pl.speedup()),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = BatchOptions::with_threads(threads_from_args(&args));
    println!("Appendix table: full experiment results");
    println!("(columns: matrix, programs beating AllReduce / total for Ring and Tree,");
    println!(" AllReduce Ring/Tree, Optimal Ring/Tree, Speedup Ring/Tree)\n");

    let mut summary = SpeedupSummary::default();
    let mut global_allreduce_spread: f64 = 1.0;
    let blocks: Vec<((SystemKind, usize), Vec<SpecPair>)> = BLOCKS
        .into_iter()
        .map(|(system, nodes)| ((system, nodes), block_pairs(system, nodes)))
        .collect();
    // Progress/ETA on stderr while the tables stream to stdout.
    let all_specs: Vec<ExperimentSpec> = blocks
        .iter()
        .flat_map(|(_, pairs)| pairs.iter())
        .flat_map(|(ring, tree)| [ring.clone(), tree.clone()])
        .collect();
    let progress = ProgressObserver::new("appendix")
        .with_total(total_placements(&all_specs))
        .with_every(8);

    for ((system, nodes), pairs) in &blocks {
        println!(
            "== {nodes} nodes each with {} {:?} ==",
            system.gpus_per_node(),
            system
        );
        for (ring_spec, tree_spec) in pairs {
            // Each (ring, tree) pair shares one work-stealing pool so the
            // sweep respects the --threads budget while the tables stream.
            let mut pair_results = run_specs_batch(
                &[ring_spec.clone(), tree_spec.clone()],
                None,
                CostModelKind::AlphaBeta,
                &options,
                &progress,
            )
            .expect("appendix specs build and run")
            .results;
            let tree = pair_results.pop().expect("tree result");
            let ring = pair_results.pop().expect("ring result");
            println!(
                "  axes {:?} reduce {:?}  (synthesis {:.3}s ring / {:.3}s tree)",
                ring_spec.axes,
                ring_spec.reduction,
                ring.synthesis_time.as_secs_f64(),
                tree.synthesis_time.as_secs_f64()
            );
            print_block(&ring, &tree);
            summary.add(&ring);
            summary.add(&tree);
            // Track the AllReduce spread across matrices for Result 1.
            for result in [&ring, &tree] {
                let times: Vec<f64> = result
                    .placements
                    .iter()
                    .map(|p| p.allreduce_measured)
                    .collect();
                let max = times.iter().copied().fold(f64::MIN, f64::max);
                let min = times.iter().copied().fold(f64::MAX, f64::min);
                if min > 0.0 && times.len() > 1 {
                    global_allreduce_spread = global_allreduce_spread.max(max / min);
                }
            }
        }
        println!();
    }

    println!("Result 1: AllReduce time differs across parallelism matrices by up to {global_allreduce_spread:.1}x");
    println!("          (paper: up to 448.5x)");
    println!("Result 5: {summary}");
    println!("          (paper: 69% of mappings improved, average 1.27x, max 2.04x)");
}
