//! Planner-service benchmark: quantifies what the content-addressed plan
//! cache buys — the cold-miss cost of synthesizing a rack-preset plan versus
//! the warm-hit cost of serving the same fingerprint from the in-memory
//! store, and the restart cost of promoting it from disk. CI archives the
//! JSON record next to `BENCH_synthesis.json` / `BENCH_sweep.json` so cache
//! regressions show up as artifact diffs.
//!
//! Usage: `cargo run --release -p p2_bench --bin service_bench --`
//! `[--threads N] [--json PATH] [--assert-warm-ratio X]`
//!
//! The warm-ratio assertion (cold-miss latency ÷ warm-hit latency, CI passes
//! `--assert-warm-ratio 100`) is opt-in because absolute latencies depend on
//! the machine; the hit/miss source accounting is asserted always.

use std::time::Instant;

use p2_bench::threads_from_args;
use p2_core::RunMode;
use p2_service::{PlanRequest, PlanSource, Planner, PlannerConfig};
use p2_topology::presets;

const WARM_PROBES: usize = 64;

/// The benchmarked request: the 2×2×4 rack preset, 16 devices on a 3-level
/// hierarchy — big enough that synthesis dominates, small enough for CI.
fn rack_request() -> PlanRequest {
    PlanRequest::new(presets::rack_node_gpu_system(2, 2, 4), vec![4, 4], vec![0])
        .with_bytes_per_device(1.0e9)
        .with_repeats(2)
        .with_keep_top(8)
        .with_mode(RunMode::Measure)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn planner_config(threads: usize, store_dir: &std::path::Path) -> PlannerConfig {
    PlannerConfig {
        threads,
        store_dir: Some(store_dir.to_path_buf()),
        ..PlannerConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = threads_from_args(&args);
    let json_path = flag_value(&args, "--json");
    let assert_warm_ratio: Option<f64> = flag_value(&args, "--assert-warm-ratio").map(|v| {
        v.parse()
            .expect("--assert-warm-ratio needs a ratio, e.g. 100")
    });

    let store_dir = std::env::temp_dir().join(format!("p2-service-bench-{}", std::process::id()));
    let request = rack_request();
    println!(
        "Planner-service benchmark: rack 2x2x4 preset, fingerprint {}",
        request.fingerprint()
    );

    // Cold miss: an empty planner synthesizes the plan.
    let planner = Planner::new(planner_config(threads, &store_dir)).expect("planner starts");
    let cold_start = Instant::now();
    let cold = planner
        .plan("bench", request.clone())
        .expect("cold plan succeeds");
    let cold_s = cold_start.elapsed().as_secs_f64();
    assert_eq!(
        cold.source,
        PlanSource::Synthesized,
        "first request must miss"
    );

    // Warm hits: the same fingerprint served from the in-memory store. The
    // minimum over many probes is the steady-state hit cost (the first probe
    // can eat a cache-cold code path).
    let mut warm_s = f64::INFINITY;
    for _ in 0..WARM_PROBES {
        let warm_start = Instant::now();
        let warm = planner
            .plan("bench", request.clone())
            .expect("warm plan succeeds");
        warm_s = warm_s.min(warm_start.elapsed().as_secs_f64());
        assert_eq!(
            warm.source,
            PlanSource::Warm,
            "repeat request must hit warm"
        );
        assert_eq!(
            *warm.plan, *cold.plan,
            "warm hit must return the cached plan"
        );
    }
    planner.shutdown();

    // Restart: a fresh planner on the same directory promotes from disk.
    let planner = Planner::new(planner_config(threads, &store_dir)).expect("planner restarts");
    let disk_start = Instant::now();
    let disk = planner
        .plan("bench", request.clone())
        .expect("disk plan succeeds");
    let disk_s = disk_start.elapsed().as_secs_f64();
    assert_eq!(
        disk.source,
        PlanSource::Disk,
        "restart must serve from disk"
    );
    assert_eq!(*disk.plan, *cold.plan, "disk plan must be bit-identical");
    planner.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);

    let warm_ratio = cold_s / warm_s;
    let disk_ratio = cold_s / disk_s;
    println!("  cold miss (synthesis): {:>10.1} us", cold_s * 1e6);
    println!(
        "  warm hit  (memory):    {:>10.1} us (min of {WARM_PROBES} probes) — {warm_ratio:.0}x",
        warm_s * 1e6
    );
    println!(
        "  disk hit  (restart):   {:>10.1} us — {disk_ratio:.0}x",
        disk_s * 1e6
    );

    if let Some(path) = json_path {
        let json = format!(
            concat!(
                "{{\n",
                "  \"fingerprint\": \"{}\",\n",
                "  \"threads\": {},\n",
                "  \"warm_probes\": {},\n",
                "  \"cold_us\": {:.1},\n",
                "  \"warm_us\": {:.1},\n",
                "  \"disk_us\": {:.1},\n",
                "  \"warm_ratio\": {:.1},\n",
                "  \"disk_ratio\": {:.1}\n",
                "}}\n"
            ),
            cold.fingerprint,
            threads,
            WARM_PROBES,
            cold_s * 1e6,
            warm_s * 1e6,
            disk_s * 1e6,
            warm_ratio,
            disk_ratio,
        );
        std::fs::write(&path, json).expect("write JSON report");
        println!("  wrote {path}");
    }

    if let Some(min) = assert_warm_ratio {
        assert!(
            warm_ratio >= min,
            "warm-hit speedup {warm_ratio:.1}x below the required {min:.1}x \
             (cold {:.1}us vs warm {:.1}us)",
            cold_s * 1e6,
            warm_s * 1e6
        );
        println!("  warm-ratio assertion passed (>= {min:.0}x)");
    }
}
