//! **Table 4 at rack scale**: AllReduce vs. the synthesized optimal reduction
//! strategy on the 3-level `rack_node_gpu` preset, sweeping rack counts and
//! core-switch oversubscription ratios (ROADMAP: "paper-style tables for
//! 3-level topologies").
//!
//! All six (racks × oversubscription) bins run as ONE batch on one
//! work-stealing pool ([`p2_bench::run_batch`]): placement jobs of every bin
//! coexist in the deques, so a `--threads` budget is a global cap instead of
//! a per-bin one. Bound sharing is on — each bin is its own sharing group
//! (the systems differ), so within a bin cheap placements prune expensive
//! ones through the single-pass dyadic bound, deterministically for any
//! thread count, exactly as the old per-bin
//! [`p2_core::SharedBoundObserver`] did.
//!
//! Run with `cargo run --release -p p2_bench --bin rack_table4`
//! `[-- --cost-model alpha-beta|loggp|calibrated] [--threads N]`.

use p2_bench::{cost_model_from_args, fmt_s, fmt_speedup, threads_from_args, BatchOptions};
use p2_core::{run_batch, RunMode, P2};
use p2_topology::presets;

const NODES_PER_RACK: usize = 2;
const GPUS_PER_NODE: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = cost_model_from_args();
    let threads = threads_from_args(&args);
    println!("Rack-scale Table 4: AllReduce vs. synthesized optimum on the rack/node/GPU preset");
    println!("(single-pass shared bound; cost model: {kind})\n");

    let mut bins = Vec::new();
    let mut sessions = Vec::new();
    for racks in [2usize, 4] {
        for oversubscription in [1.0f64, 2.0, 4.0] {
            let system = presets::rack_node_gpu_system_oversubscribed(
                racks,
                NODES_PER_RACK,
                GPUS_PER_NODE,
                oversubscription,
            );
            let devices = system.num_devices();
            bins.push(oversubscription);
            sessions.push(
                P2::builder(system)
                    .parallelism_axes([4, devices / 4])
                    .reduction_axes([1])
                    .bytes_per_device((1u64 << 26) as f64 * racks as f64 * 4.0)
                    .repeats(2)
                    .seed(0xb2b2)
                    .keep_top(8)
                    .cost_model_kind(kind)
                    .mode(RunMode::Shortlist(10))
                    .build()
                    .expect("session builds"),
            );
        }
    }

    let options = BatchOptions {
        threads,
        ..BatchOptions::default()
    }
    .sharing();
    let outcome = run_batch(&sessions, &options, &()).expect("pipeline runs");

    for (i, (result, oversubscription)) in outcome.results.iter().zip(&bins).enumerate() {
        let bound = outcome.bounds[outcome.group_of[i]];
        println!(
            "{} — core switch {oversubscription}:1: {} placements, {} programs \
             ({} retained, {} pruned), shared bound {}",
            result.label,
            result.placements.len(),
            result.total_programs(),
            result.total_programs_retained(),
            result.total_programs_pruned(),
            bound.map(fmt_s).unwrap_or_else(|| "-".to_string()),
        );
        let memo_hits = result.total_suffix_memo_hits();
        let memo_misses = result.total_suffix_memo_misses();
        println!(
            "  search: {} synthesis states explored, peak device-state interner {} \
             (shared across the sweep: {}), suffix-memo hit rate {:.1}%, {} shared-state \
             reuses",
            result.total_states_explored(),
            result.peak_unique_device_states(),
            result
                .shared_unique_device_states
                .map_or_else(|| "off".to_string(), |n| n.to_string()),
            memo_hits as f64 / (memo_hits + memo_misses).max(1) as f64 * 100.0,
            result.total_shared_states_reused(),
        );
        println!(
            "  {:<26} {:>11} {:>11} {:>9}",
            "parallelism matrix", "AllReduce", "Optimal", "Speedup"
        );
        let best_overall = result
            .best_overall()
            .map(|p| p.measured_seconds)
            .unwrap_or(f64::INFINITY);
        for placement in &result.placements {
            let optimal = placement.optimal_measured();
            let marker = if (optimal - best_overall).abs() < 1e-12 {
                "*"
            } else {
                " "
            };
            println!(
                "  {:<26} {:>11} {:>10}{} {:>9}",
                placement.matrix.to_string(),
                fmt_s(placement.allreduce_measured),
                fmt_s(optimal),
                marker,
                fmt_speedup(placement.speedup()),
            );
        }
        if let Some(best) = result.best_overall() {
            println!(
                "  best strategy: {} in {}s\n",
                best.signature(),
                fmt_s(best.measured_seconds)
            );
        }
    }
    println!(
        "(batch: {} sharing groups on {} threads, {} steals; '*' marks the overall optimum; \
         speedups are vs. each placement's own AllReduce)",
        outcome.groups, outcome.threads, outcome.steals
    );
}
