//! Benchmarks the parallel level-synchronous DAG build against the serial
//! build on the heaviest rack/node/GPU placement, asserts the two are
//! bit-identical (same programs, same order, same deterministic statistics)
//! and reports the build-phase speedup.
//!
//! Usage: `cargo run --release -p p2_bench --bin parallel_build_bench --`
//! `[--size N] [--threads N] [--repeats N] [--assert-speedup X]`
//! `[--json PATH]`
//!
//! The serial and parallel builds each run `--repeats` times (default 3) and
//! the best build-phase time of each is compared. `--assert-speedup X` exits
//! non-zero unless parallel is at least `X`× faster — the CI gate; it is
//! opt-in because the speedup depends on the runner's core count.
//! `--json PATH` writes a machine-readable record for the bench trajectory.

use std::time::Duration;

use p2_placement::enumerate_matrices;
use p2_synthesis::{HierarchyKind, SynthesisResult, Synthesizer};
use p2_topology::presets;

struct Args {
    size: usize,
    threads: usize,
    repeats: usize,
    assert_speedup: Option<f64>,
    json_path: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        size: 6,
        threads: 8,
        repeats: 3,
        assert_speedup: None,
        json_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--size" => {
                let value = args.next().expect("--size takes a value");
                parsed.size = value.parse().expect("--size takes an integer");
            }
            "--threads" => {
                let value = args.next().expect("--threads takes a value");
                parsed.threads = value.parse().expect("--threads takes an integer");
            }
            "--repeats" => {
                let value = args.next().expect("--repeats takes a value");
                parsed.repeats = value.parse().expect("--repeats takes an integer");
            }
            "--assert-speedup" => {
                let value = args.next().expect("--assert-speedup takes a value");
                parsed.assert_speedup =
                    Some(value.parse().expect("--assert-speedup takes a float"));
            }
            "--json" => parsed.json_path = Some(args.next().expect("--json takes a path")),
            other => panic!("unknown argument: {other} (see the doc comment for usage)"),
        }
    }
    assert!(parsed.repeats > 0, "--repeats must be positive");
    parsed
}

/// Runs the synthesis `repeats` times at the given thread count and returns
/// the last result together with the best build-phase duration.
fn best_of(
    repeats: usize,
    threads: usize,
    size: usize,
    make: &dyn Fn() -> Synthesizer,
) -> (SynthesisResult, Duration) {
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..repeats {
        let result = make().with_build_threads(threads).synthesize(size);
        best = best.min(result.stats.build_duration);
        last = Some(result);
    }
    (last.expect("repeats > 0"), best)
}

fn main() {
    let Args {
        size,
        threads,
        repeats,
        assert_speedup,
        json_path,
    } = parse_args();

    let rack = presets::rack_node_gpu_system(2, 2, 4);
    let matrix = enumerate_matrices(&rack.hierarchy().arities(), &[16])
        .expect("rack axes fit the system")
        .into_iter()
        .next()
        .expect("at least one rack placement");
    let make = move || {
        Synthesizer::new(matrix.clone(), vec![0], HierarchyKind::ReductionAxes)
            .expect("valid synthesizer")
    };

    println!(
        "Parallel DAG build bench: heaviest rack/node/GPU placement, \
         max_program_size = {size}, best of {repeats}\n"
    );
    let (serial, serial_build) = best_of(repeats, 1, size, &make);
    let (parallel, parallel_build) = best_of(repeats, threads, size, &make);

    // The tentpole contract: bit-identical artifacts for any thread count.
    assert_eq!(
        serial.programs, parallel.programs,
        "parallel build changed the program set or order"
    );
    let deterministic = |r: &SynthesisResult| {
        (
            r.stats.states_explored,
            r.stats.instructions_tried,
            r.stats.candidate_instructions,
            r.stats.programs_emitted,
            r.stats.unique_device_states,
            r.stats.goal_respects_entries,
            r.stats.apply_cache_hits + r.stats.apply_cache_misses,
        )
    };
    assert_eq!(
        deterministic(&serial),
        deterministic(&parallel),
        "parallel build changed a deterministic statistic"
    );

    let serial_ms = serial_build.as_secs_f64() * 1e3;
    let parallel_ms = parallel_build.as_secs_f64() * 1e3;
    let speedup = serial_ms / parallel_ms.max(1e-9);
    println!(
        "serial build:   {serial_ms:.2} ms\n\
         parallel build: {parallel_ms:.2} ms ({threads} threads)\n\
         speedup:        {speedup:.2}x\n\
         programs:       {} (bit-identical across builds)",
        serial.programs.len()
    );

    if let Some(path) = json_path {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"parallel_build_bench\",\n",
                "  \"case\": \"rack_node_gpu_reduce0\",\n",
                "  \"max_program_size\": {},\n",
                "  \"threads\": {},\n",
                "  \"repeats\": {},\n",
                "  \"serial_build_ms\": {:.3},\n",
                "  \"parallel_build_ms\": {:.3},\n",
                "  \"speedup\": {:.3},\n",
                "  \"programs\": {},\n",
                "  \"bit_identical\": true\n",
                "}}\n"
            ),
            size,
            threads,
            repeats,
            serial_ms,
            parallel_ms,
            speedup,
            serial.programs.len(),
        );
        std::fs::write(&path, json).expect("writing the JSON report");
        println!("\nwrote {path}");
    }

    if let Some(min) = assert_speedup {
        assert!(
            speedup >= min,
            "parallel build speedup {speedup:.2}x below the required {min:.2}x"
        );
        println!("\nok: speedup {speedup:.2}x >= required {min:.2}x");
    } else {
        println!("\nok: serial and parallel builds are bit-identical");
    }
}
