//! Batch-scheduling smoke run: executes the Table 3 + Table 4 specification
//! batch twice — once as sequential per-spec `run()` calls and once as ONE
//! work-stolen batch ([`p2_bench::run_specs_batch`]) — asserts the two are
//! bit-identical, and reports the wall-clock ratio plus the scheduler
//! telemetry (steals, peak in-flight jobs). CI archives the JSON record next
//! to `BENCH_synthesis.json` so batch-scheduling regressions show up as
//! artifact diffs.
//!
//! Usage: `cargo run --release -p p2_bench --bin sweep_batch --`
//! `[--threads N] [--json PATH] [--assert-speedup X]`
//!
//! The speedup assertion is opt-in because it only holds on a genuinely
//! multi-core machine (CI passes `--threads 8 --assert-speedup 1.5`);
//! bit-identity between the serial and batched runs is asserted always, on
//! any machine.

use std::time::Instant;

use p2_bench::{
    fmt_s, run_specs_batch, table3_specs, table4_specs, threads_from_args, BatchOptions,
    ExperimentSpec,
};
use p2_core::ExperimentResult;
use p2_cost::{CostModelKind, NcclAlgo};

/// The batch: every Table 3 axes group swept for both reduction axes, plus
/// the seven Table 4 configurations — 15 specs over four distinct machines.
fn batch_specs() -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for (id, system, nodes, axes) in table3_specs() {
        for reduction in [vec![0], vec![1]] {
            specs.push(ExperimentSpec::new(
                id,
                system,
                nodes,
                axes.clone(),
                reduction,
                NcclAlgo::Ring,
            ));
        }
    }
    specs.extend(table4_specs());
    specs
}

/// Panics unless the two results agree bit for bit on everything the paper's
/// tables are derived from.
fn assert_identical(id: &str, serial: &ExperimentResult, batched: &ExperimentResult) {
    assert_eq!(serial.label, batched.label, "{id}: label");
    assert_eq!(
        serial.placements.len(),
        batched.placements.len(),
        "{id}: placement count"
    );
    for (a, b) in serial.placements.iter().zip(&batched.placements) {
        let matrix = a.matrix.to_string();
        assert_eq!(matrix, b.matrix.to_string(), "{id}: matrix order");
        assert_eq!(a.num_programs, b.num_programs, "{id} {matrix}: programs");
        assert_eq!(
            a.programs_retained, b.programs_retained,
            "{id} {matrix}: retained"
        );
        assert_eq!(
            a.programs_pruned, b.programs_pruned,
            "{id} {matrix}: pruned"
        );
        assert_eq!(
            a.allreduce_predicted, b.allreduce_predicted,
            "{id} {matrix}: AllReduce predicted"
        );
        assert_eq!(
            a.allreduce_measured, b.allreduce_measured,
            "{id} {matrix}: AllReduce measured"
        );
        for (pa, pb) in a.programs.iter().zip(&b.programs) {
            assert_eq!(pa.signature(), pb.signature(), "{id} {matrix}: signature");
            assert_eq!(
                pa.predicted_seconds, pb.predicted_seconds,
                "{id} {matrix}: predicted"
            );
            assert_eq!(
                pa.measured_seconds, pb.measured_seconds,
                "{id} {matrix}: measured"
            );
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = threads_from_args(&args);
    let json_path = flag_value(&args, "--json");
    let assert_speedup: Option<f64> = flag_value(&args, "--assert-speedup")
        .map(|v| v.parse().expect("--assert-speedup needs a ratio, e.g. 1.5"));

    let specs = batch_specs();
    println!(
        "Batch scheduling smoke: {} specs (Table 3 axes groups x both reductions + Table 4)",
        specs.len()
    );

    // Baseline: one spec after another, each a fully serial pipeline.
    let serial_start = Instant::now();
    let serial: Vec<ExperimentResult> = specs
        .iter()
        .map(|spec| {
            spec.session()
                .threads(1)
                .cost_model_kind(CostModelKind::AlphaBeta)
                .build()
                .expect("spec builds")
                .run()
                .expect("pipeline runs")
        })
        .collect();
    let serial_s = serial_start.elapsed().as_secs_f64();

    // The same batch on one work-stealing pool.
    let options = BatchOptions::with_threads(threads);
    let batch_start = Instant::now();
    let outcome = run_specs_batch(&specs, None, CostModelKind::AlphaBeta, &options, &())
        .expect("pipeline runs");
    let batch_s = batch_start.elapsed().as_secs_f64();

    for ((spec, a), b) in specs.iter().zip(&serial).zip(&outcome.results) {
        assert_identical(spec.id, a, b);
    }
    let placements: usize = serial.iter().map(|r| r.placements.len()).sum();
    let predictions: usize = serial.iter().map(|r| r.total_programs()).sum();
    let speedup = serial_s / batch_s;
    println!("  {placements} placements, {predictions} programs predicted per pass");
    println!("  sequential per-spec runs: {} s", fmt_s(serial_s));
    println!(
        "  work-stolen batch:        {} s on {} threads ({} steals, peak {} in flight)",
        fmt_s(batch_s),
        outcome.threads,
        outcome.steals,
        outcome.peak_in_flight
    );
    println!("  speedup: {speedup:.2}x — results bit-identical");

    if let Some(path) = json_path {
        let json = format!(
            concat!(
                "{{\n",
                "  \"specs\": {},\n",
                "  \"placements\": {},\n",
                "  \"predictions\": {},\n",
                "  \"threads\": {},\n",
                "  \"serial_s\": {:.3},\n",
                "  \"batch_s\": {:.3},\n",
                "  \"speedup\": {:.3},\n",
                "  \"steals\": {},\n",
                "  \"peak_in_flight\": {},\n",
                "  \"groups\": {}\n",
                "}}\n"
            ),
            specs.len(),
            placements,
            predictions,
            outcome.threads,
            serial_s,
            batch_s,
            speedup,
            outcome.steals,
            outcome.peak_in_flight,
            outcome.groups,
        );
        std::fs::write(&path, json).expect("write JSON report");
        println!("  wrote {path}");
    }

    if let Some(min) = assert_speedup {
        assert!(
            speedup >= min,
            "batch speedup {speedup:.2}x below the required {min:.2}x \
             (serial {serial_s:.3}s vs batch {batch_s:.3}s on {} threads)",
            outcome.threads
        );
        println!("  speedup assertion passed (>= {min:.2}x)");
    }
}
