//! Reproduces **Table 3** of the paper: AllReduce time across parallelism
//! matrices, for reduction on the 0th and 1st axis, with NCCL ring and tree,
//! with the selected cost model's prediction beside every measurement.
//!
//! Run with `cargo run --release -p p2-bench --bin table3`
//! `[-- --cost-model alpha-beta|loggp|calibrated]`.

use p2_bench::{cost_model_from_args, fmt_s, table3_specs};
use p2_core::P2Config;
use p2_cost::NcclAlgo;
use p2_exec::{ExecConfig, Executor};
use p2_placement::enumerate_matrices;
use p2_synthesis::baseline_allreduce;

fn main() {
    let kind = cost_model_from_args();
    println!("Table 3: reduction time in seconds of running AllReduce");
    println!("(measured on the simulated substrate; the paper's absolute numbers differ,");
    println!(" the placement-induced spread is the result being reproduced;");
    println!(" pred columns: the {kind} cost model, select with --cost-model)\n");

    let mut global_max_ratio: f64 = 1.0;
    for (id, system_kind, nodes, axes) in table3_specs() {
        let system = system_kind.system(nodes);
        let bytes = (1u64 << 29) as f64 * nodes as f64 * 4.0;
        println!(
            "{} nodes, each with {} {:?} — parallelism axes {:?}",
            nodes,
            system_kind.gpus_per_node(),
            system_kind,
            axes
        );
        println!(
            "  {:<6} {:<22} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "id",
            "parallelism matrix",
            "a0 Ring",
            "pred",
            "a0 Tree",
            "pred",
            "a1 Ring",
            "pred",
            "a1 Tree",
            "pred"
        );
        // One model per NCCL algorithm: the calibrated kind fits against the
        // algorithm's own substrate.
        let models: Vec<_> = NcclAlgo::ALL
            .iter()
            .map(|&algo| {
                P2Config::new(system.clone(), axes.clone(), vec![0])
                    .with_algo(algo)
                    .with_bytes_per_device(bytes)
                    .make_cost_model(kind)
                    .expect("cost model builds")
            })
            .collect();
        let matrices = enumerate_matrices(&system.hierarchy().arities(), &axes)
            .expect("table 3 axes match their systems");
        let mut per_axis_times: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
        for (idx, matrix) in matrices.iter().enumerate() {
            let mut row = Vec::new();
            for (reduction_axis, axis_times) in per_axis_times.iter_mut().enumerate() {
                for (algo, model) in NcclAlgo::ALL.into_iter().zip(&models) {
                    let exec = Executor::new(&system, ExecConfig::new(algo, bytes).with_repeats(3))
                        .expect("valid exec config");
                    let baseline = baseline_allreduce(matrix, &[reduction_axis])
                        .expect("valid reduction axis");
                    let seconds = exec.measure(&baseline);
                    row.push((seconds, model.program_time(&baseline)));
                    axis_times.push(seconds);
                }
            }
            println!(
                "  {:<6} {:<22} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                format!("{id}{}", idx + 1),
                matrix.to_string(),
                fmt_s(row[0].0),
                fmt_s(row[0].1),
                fmt_s(row[1].0),
                fmt_s(row[1].1),
                fmt_s(row[2].0),
                fmt_s(row[2].1),
                fmt_s(row[3].0),
                fmt_s(row[3].1),
            );
        }
        for (axis, times) in per_axis_times.iter().enumerate() {
            let max = times.iter().copied().fold(f64::MIN, f64::max);
            let min = times.iter().copied().fold(f64::MAX, f64::min);
            if min > 0.0 {
                let ratio = max / min;
                global_max_ratio = global_max_ratio.max(ratio);
                println!("  axis {axis}: max/min AllReduce ratio across matrices = {ratio:.1}x");
            }
        }
        println!();
    }
    println!(
        "Result 1 headline: the performance of AllReduce differs across parallelism matrices by up to {global_max_ratio:.1}x"
    );
    println!("(the paper reports up to 448.5x on its hardware)");
}
