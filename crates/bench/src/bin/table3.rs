//! Reproduces **Table 3** of the paper: AllReduce time across parallelism
//! matrices, for reduction on the 0th and 1st axis, with NCCL ring and tree,
//! with the selected cost model's prediction beside every measurement.
//!
//! The four system blocks are mapped onto the work-stealing scheduler
//! ([`p2_par::scope`]); each block's rows are pure functions of its
//! configuration, so the printed table is identical for any `--threads`
//! count.
//!
//! Run with `cargo run --release -p p2-bench --bin table3`
//! `[-- --cost-model alpha-beta|loggp|calibrated] [--threads N]`.

use p2_bench::{cost_model_from_args, fmt_s, table3_specs, threads_from_args};
use p2_core::P2Config;
use p2_cost::NcclAlgo;
use p2_exec::{ExecConfig, Executor};
use p2_placement::enumerate_matrices;
use p2_synthesis::baseline_allreduce;

/// One table row: row id, matrix label, and the (measured, predicted) pair
/// per (reduction axis × algorithm) column.
type Row = (String, String, Vec<(f64, f64)>);

/// One fully evaluated system block, ready to print.
struct Block {
    header: String,
    rows: Vec<Row>,
    /// Per axis: max/min measured-AllReduce ratio across matrices.
    ratios: Vec<(usize, f64)>,
}

fn evaluate_block(
    kind: p2_cost::CostModelKind,
    id: &str,
    system_kind: p2_bench::SystemKind,
    nodes: usize,
    axes: &[usize],
) -> Block {
    let system = system_kind.system(nodes);
    let bytes = (1u64 << 29) as f64 * nodes as f64 * 4.0;
    let header = format!(
        "{} nodes, each with {} {:?} — parallelism axes {:?}",
        nodes,
        system_kind.gpus_per_node(),
        system_kind,
        axes
    );
    // One model per NCCL algorithm: the calibrated kind fits against the
    // algorithm's own substrate.
    let models: Vec<_> = NcclAlgo::ALL
        .iter()
        .map(|&algo| {
            P2Config::new(system.clone(), axes.to_vec(), vec![0])
                .with_algo(algo)
                .with_bytes_per_device(bytes)
                .make_cost_model(kind)
                .expect("cost model builds")
        })
        .collect();
    let matrices = enumerate_matrices(&system.hierarchy().arities(), axes)
        .expect("table 3 axes match their systems");
    let mut rows = Vec::with_capacity(matrices.len());
    let mut per_axis_times: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
    for (idx, matrix) in matrices.iter().enumerate() {
        let mut row = Vec::new();
        for (reduction_axis, axis_times) in per_axis_times.iter_mut().enumerate() {
            for (algo, model) in NcclAlgo::ALL.into_iter().zip(&models) {
                let exec = Executor::new(&system, ExecConfig::new(algo, bytes).with_repeats(3))
                    .expect("valid exec config");
                let baseline =
                    baseline_allreduce(matrix, &[reduction_axis]).expect("valid reduction axis");
                let seconds = exec.measure(&baseline);
                row.push((seconds, model.program_time(&baseline)));
                axis_times.push(seconds);
            }
        }
        rows.push((format!("{id}{}", idx + 1), matrix.to_string(), row));
    }
    let ratios = per_axis_times
        .iter()
        .enumerate()
        .filter_map(|(axis, times)| {
            let max = times.iter().copied().fold(f64::MIN, f64::max);
            let min = times.iter().copied().fold(f64::MAX, f64::min);
            (min > 0.0).then(|| (axis, max / min))
        })
        .collect();
    Block {
        header,
        rows,
        ratios,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = cost_model_from_args();
    let threads = threads_from_args(&args);
    println!("Table 3: reduction time in seconds of running AllReduce");
    println!("(measured on the simulated substrate; the paper's absolute numbers differ,");
    println!(" the placement-induced spread is the result being reproduced;");
    println!(" pred columns: the {kind} cost model, select with --cost-model)\n");

    let specs = table3_specs();
    let blocks = p2_par::scope(threads, |scheduler| {
        scheduler.map(&specs, move |_, (id, system_kind, nodes, axes)| {
            evaluate_block(kind, id, *system_kind, *nodes, axes)
        })
    });

    let mut global_max_ratio: f64 = 1.0;
    for block in &blocks {
        println!("{}", block.header);
        println!(
            "  {:<6} {:<22} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "id",
            "parallelism matrix",
            "a0 Ring",
            "pred",
            "a0 Tree",
            "pred",
            "a1 Ring",
            "pred",
            "a1 Tree",
            "pred"
        );
        for (row_id, matrix, row) in &block.rows {
            println!(
                "  {:<6} {:<22} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                row_id,
                matrix,
                fmt_s(row[0].0),
                fmt_s(row[0].1),
                fmt_s(row[1].0),
                fmt_s(row[1].1),
                fmt_s(row[2].0),
                fmt_s(row[2].1),
                fmt_s(row[3].0),
                fmt_s(row[3].1),
            );
        }
        for (axis, ratio) in &block.ratios {
            global_max_ratio = global_max_ratio.max(*ratio);
            println!("  axis {axis}: max/min AllReduce ratio across matrices = {ratio:.1}x");
        }
        println!();
    }
    println!(
        "Result 1 headline: the performance of AllReduce differs across parallelism matrices by up to {global_max_ratio:.1}x"
    );
    println!("(the paper reports up to 448.5x on its hardware)");
}
