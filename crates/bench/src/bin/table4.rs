//! Reproduces **Table 4** of the paper: synthesis time, number of programs
//! outperforming AllReduce, and AllReduce vs. optimal synthesized program for
//! the selected configurations F–L.
//!
//! Run with `cargo run --release -p p2-bench --bin table4`
//! `[-- --cost-model alpha-beta|loggp|calibrated] [--threads N]`.

use p2_bench::{
    cost_model_from_args, fmt_s, fmt_speedup, run_specs_batch, table4_specs, threads_from_args,
    SpeedupSummary,
};
use p2_core::BatchOptions;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = cost_model_from_args();
    let threads = threads_from_args(&args);
    let options = BatchOptions::with_threads(threads);
    println!(
        "Table 4: reduction time in seconds for AllReduce and the synthesized optimal strategy"
    );
    println!("(reduction on the 0th axis for 1- and 2-axis configurations, on the 0th and 2nd for 3-axis ones;");
    println!(" predictions by the {kind} cost model, select with --cost-model)\n");
    println!(
        "{:<4} {:<6} {:<14} {:>12} {:>22} {:<22} {:>10} {:>10} {:>9}",
        "id",
        "algo",
        "axes",
        "synth (s)",
        "beat-AllReduce/total",
        "parallelism matrix",
        "AllReduce",
        "Optimal",
        "Speedup"
    );

    let mut summary = SpeedupSummary::default();
    let mut states_explored = 0usize;
    let mut peak_interner = 0usize;
    let mut memo_hits = 0usize;
    let mut memo_misses = 0usize;
    let mut shared_reused = 0usize;
    let specs = table4_specs();
    let results = run_specs_batch(&specs, None, kind, &options, &())
        .expect("table 4 specs build and run")
        .results;
    for (spec, result) in specs.iter().zip(&results) {
        summary.add(result);
        states_explored += result.total_states_explored();
        peak_interner = peak_interner.max(result.peak_unique_device_states());
        memo_hits += result.total_suffix_memo_hits();
        memo_misses += result.total_suffix_memo_misses();
        shared_reused += result.total_shared_states_reused();
        let beating = result.total_programs_beating_allreduce();
        let total = result.total_programs();
        let synth_s = result.synthesis_time.as_secs_f64();
        let best_allreduce = result
            .best_allreduce_placement()
            .map(|p| p.allreduce_measured)
            .unwrap_or(f64::INFINITY);
        let best_overall = result
            .best_overall()
            .map(|p| p.measured_seconds)
            .unwrap_or(f64::INFINITY);
        for (i, placement) in result.placements.iter().enumerate() {
            let first = i == 0;
            let allreduce_marker = if (placement.allreduce_measured - best_allreduce).abs() < 1e-12
            {
                "*"
            } else {
                " "
            };
            let optimal = placement.optimal_measured();
            let optimal_marker = if (optimal - best_overall).abs() < 1e-12 {
                "*"
            } else {
                " "
            };
            println!(
                "{:<4} {:<6} {:<14} {:>12} {:>22} {:<22} {:>9}{} {:>9}{} {:>9}",
                if first { spec.id } else { "" },
                if first {
                    spec.algo.to_string()
                } else {
                    String::new()
                },
                if first {
                    format!("{:?}", spec.axes)
                } else {
                    String::new()
                },
                if first { fmt_s(synth_s) } else { String::new() },
                if first {
                    format!("{beating}/{total}")
                } else {
                    String::new()
                },
                placement.matrix.to_string(),
                fmt_s(placement.allreduce_measured),
                allreduce_marker,
                fmt_s(optimal),
                optimal_marker,
                fmt_speedup(placement.speedup()),
            );
        }
    }
    println!();
    println!("('*' marks the best AllReduce placement and the overall optimum, the paper's bold entries)");
    println!();
    println!(
        "Search-space size across the Table 4 sweeps: {states_explored} synthesis states \
         explored, peak device-state interner {peak_interner}"
    );
    println!(
        "Suffix-memo across the Table 4 sweeps: {:.1}% hit rate ({memo_hits} hits / \
         {memo_misses} misses), {shared_reused} device states reused from the sweep-wide \
         shared interner",
        memo_hits as f64 / (memo_hits + memo_misses).max(1) as f64 * 100.0,
    );
    println!("Result 5 aggregate over the Table 4 configurations: {summary}");
    println!("(the paper reports 69% of mappings improved, average 1.27x, max 2.04x over all configurations;");
    println!(" run the appendix_table binary for the full sweep)");

    // The same sweep with bounded (top-8) retention: the streaming engine
    // prunes and displaces most candidates yet lands on the same optima.
    println!();
    println!("Streaming retention check (keep_top = 8):");
    let bounded = run_specs_batch(&specs, Some(8), kind, &options, &())
        .expect("table 4 specs build and run")
        .results;
    for (spec, result) in specs.iter().zip(&bounded) {
        println!(
            "  {:<4} retained {:>4} of {:>5} programs ({} pruned), optimal {}",
            spec.id,
            result.total_programs_retained(),
            result.total_programs(),
            result.total_programs_pruned(),
            result
                .best_overall()
                .map(|p| format!("{} at {}s", p.signature(), fmt_s(p.measured_seconds)))
                .unwrap_or_else(|| "-".to_string()),
        );
    }
}
