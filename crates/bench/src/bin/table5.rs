//! Reproduces **Table 5** of the paper: top-k accuracy of the analytic
//! simulator (the cost model) against measurement (the execution substrate),
//! per GPU system and overall.
//!
//! Run with `cargo run --release -p p2-bench --bin table5`
//! `[-- --cost-model alpha-beta|loggp|calibrated] [--threads N]`.

use p2_bench::{
    appendix_axes, cost_model_from_args, run_specs_batch, threads_from_args, total_placements,
    ExperimentSpec, SystemKind,
};
use p2_core::{top_k_accuracy, BatchOptions, ExperimentResult, ProgressObserver};
use p2_cost::{CostModelKind, NcclAlgo};

fn system_specs(system: SystemKind, nodes_list: &[usize]) -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for &nodes in nodes_list {
        for (axes, reductions) in appendix_axes(system, nodes) {
            for reduction in reductions {
                for algo in NcclAlgo::ALL {
                    // Experiments with fewer programs than the largest k are
                    // still counted, exactly as in the paper.
                    specs.push(ExperimentSpec::new(
                        "t5",
                        system,
                        nodes,
                        axes.clone(),
                        reduction.clone(),
                        algo,
                    ));
                }
            }
        }
    }
    specs
}

fn run_system(
    specs: &[ExperimentSpec],
    kind: CostModelKind,
    options: &BatchOptions,
    progress: &ProgressObserver,
) -> Vec<ExperimentResult> {
    // The sweep is the slow part of this table: fan the specs out onto one
    // shared work-stealing pool. Top-k accuracy compares predictions against
    // *every* measurement, so this table keeps the exhaustive
    // (keep-everything) pipeline.
    run_specs_batch(specs, None, kind, options, progress)
        .expect("table 5 specs build and run")
        .results
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = cost_model_from_args();
    let options = BatchOptions::with_threads(threads_from_args(&args));
    let ks = [1usize, 2, 3, 5, 6, 10];
    println!("Table 5: prediction accuracy of the {kind} cost model vs. measurement\n");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>14}",
        "system", "Top-1", "Top-2", "Top-3", "Top-5", "Top-6", "Top-10", "experiments"
    );

    let a100_specs = system_specs(SystemKind::A100, &[2, 4]);
    let v100_specs = system_specs(SystemKind::V100, &[2, 4]);
    let progress = ProgressObserver::new("table5")
        .with_total(total_placements(&a100_specs) + total_placements(&v100_specs))
        .with_every(16);
    let a100 = run_system(&a100_specs, kind, &options, &progress);
    let v100 = run_system(&v100_specs, kind, &options, &progress);
    let mut all = a100.clone();
    all.extend(v100.clone());

    for (name, results) in [("A100", &a100), ("V100", &v100), ("Total", &all)] {
        let report = top_k_accuracy(results, &ks);
        print!("{name:<8}");
        for k in ks {
            print!(" {:>7.1}%", report.accuracy_for(k).unwrap() * 100.0);
        }
        println!(" {:>14}", report.experiments);
    }
    println!();
    println!(
        "(the paper reports 52% / 69.5% / 72% / 75% / 85% / 92% for Top-1/2/3/5/6/10 overall)"
    );
}
