//! **Table 3 at rack scale**: AllReduce time across parallelism matrices of
//! the 3-level `rack_node_gpu` preset, sweeping rack counts and core-switch
//! oversubscription ratios — the multi-node shape the paper's two-level
//! systems cannot express (ROADMAP: "paper-style tables for 3-level
//! topologies").
//!
//! Every row shows the measured (execution substrate) and predicted time of
//! the selected cost model side by side, so the model can be sanity-checked
//! per placement. The six (racks × oversubscription) bins are mapped onto the
//! work-stealing scheduler ([`p2_par::scope`]); each bin's rows are pure
//! functions of its configuration, so the printed table is identical for any
//! `--threads` count.
//!
//! Run with `cargo run --release -p p2_bench --bin rack_table3`
//! `[-- --cost-model alpha-beta|loggp|calibrated] [--threads N]`.

use p2_bench::{cost_model_from_args, fmt_s, threads_from_args};
use p2_core::P2Config;
use p2_cost::NcclAlgo;
use p2_exec::{ExecConfig, Executor};
use p2_placement::enumerate_matrices;
use p2_synthesis::baseline_allreduce;
use p2_topology::presets;

const NODES_PER_RACK: usize = 2;
const GPUS_PER_NODE: usize = 4;

/// One fully evaluated (racks, oversubscription) bin, ready to print.
struct Bin {
    header: String,
    /// Per matrix: the label and the (measured, predicted) pair per axis.
    rows: Vec<(String, Vec<(f64, f64)>)>,
    /// Per axis: max/min measured-AllReduce ratio across matrices.
    ratios: Vec<f64>,
}

fn evaluate_bin(kind: p2_cost::CostModelKind, racks: usize, oversubscription: f64) -> Bin {
    let system = presets::rack_node_gpu_system_oversubscribed(
        racks,
        NODES_PER_RACK,
        GPUS_PER_NODE,
        oversubscription,
    );
    let devices = system.num_devices();
    let axes = vec![4, devices / 4];
    let bytes = (1u64 << 26) as f64 * racks as f64 * 4.0;
    let config = P2Config::new(system.clone(), axes.clone(), vec![0])
        .with_bytes_per_device(bytes)
        .with_repeats(2)
        .with_seed(0xb2b2);
    let model = config.make_cost_model(kind).expect("cost model builds");
    let exec = Executor::new(
        &system,
        ExecConfig::new(NcclAlgo::Ring, bytes)
            .with_repeats(2)
            .with_seed(0xb2b2),
    )
    .expect("valid exec config");
    let header = format!(
        "{} — {racks} racks x {NODES_PER_RACK} nodes x {GPUS_PER_NODE} GPUs, \
         core switch {oversubscription}:1, axes {axes:?}",
        system.name()
    );
    let matrices =
        enumerate_matrices(&system.hierarchy().arities(), &axes).expect("axes match the system");
    let mut rows = Vec::with_capacity(matrices.len());
    let mut per_axis_times: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
    for matrix in &matrices {
        let mut row = Vec::new();
        for (axis, axis_times) in per_axis_times.iter_mut().enumerate() {
            let baseline = baseline_allreduce(matrix, &[axis]).expect("valid reduction axis");
            let measured = exec.measure(&baseline);
            let predicted = model.program_time(&baseline);
            axis_times.push(measured);
            row.push((measured, predicted));
        }
        rows.push((matrix.to_string(), row));
    }
    let ratios = per_axis_times
        .iter()
        .map(|times| {
            let max = times.iter().copied().fold(f64::MIN, f64::max);
            let min = times.iter().copied().fold(f64::MAX, f64::min);
            if min > 0.0 {
                max / min
            } else {
                1.0
            }
        })
        .collect();
    Bin {
        header,
        rows,
        ratios,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = cost_model_from_args();
    let threads = threads_from_args(&args);
    println!("Rack-scale Table 3: AllReduce seconds across placements of the rack/node/GPU preset");
    println!("(cost model: {kind}; select with --cost-model alpha-beta|loggp|calibrated)\n");

    let mut shapes = Vec::new();
    for racks in [2usize, 4] {
        for oversubscription in [1.0f64, 2.0, 4.0] {
            shapes.push((racks, oversubscription));
        }
    }
    let bins = p2_par::scope(threads, |scheduler| {
        scheduler.map(&shapes, move |_, &(racks, oversubscription)| {
            evaluate_bin(kind, racks, oversubscription)
        })
    });

    let mut global_max_ratio: f64 = 1.0;
    for bin in &bins {
        println!("{}", bin.header);
        println!(
            "  {:<26} {:>11} {:>11} {:>11} {:>11}",
            "parallelism matrix", "ax0 meas", "ax0 pred", "ax1 meas", "ax1 pred"
        );
        for (matrix, row) in &bin.rows {
            println!(
                "  {:<26} {:>11} {:>11} {:>11} {:>11}",
                matrix,
                fmt_s(row[0].0),
                fmt_s(row[0].1),
                fmt_s(row[1].0),
                fmt_s(row[1].1),
            );
        }
        for (axis, ratio) in bin.ratios.iter().enumerate() {
            global_max_ratio = global_max_ratio.max(*ratio);
            println!("  axis {axis}: max/min AllReduce ratio across matrices = {ratio:.1}x");
        }
        println!();
    }
    println!(
        "Result 1 at rack scale: AllReduce differs across parallelism matrices by up to \
         {global_max_ratio:.1}x"
    );
    println!(
        "(the deeper the hierarchy and the higher the oversubscription, the wider the spread)"
    );
}
