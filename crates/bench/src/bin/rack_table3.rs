//! **Table 3 at rack scale**: AllReduce time across parallelism matrices of
//! the 3-level `rack_node_gpu` preset, sweeping rack counts and core-switch
//! oversubscription ratios — the multi-node shape the paper's two-level
//! systems cannot express (ROADMAP: "paper-style tables for 3-level
//! topologies").
//!
//! Every row shows the measured (execution substrate) and predicted time of
//! the selected cost model side by side, so the model can be sanity-checked
//! per placement.
//!
//! Run with `cargo run --release -p p2_bench --bin rack_table3`
//! `[-- --cost-model alpha-beta|loggp|calibrated]`.

use p2_bench::{cost_model_from_args, fmt_s};
use p2_core::P2Config;
use p2_cost::NcclAlgo;
use p2_exec::{ExecConfig, Executor};
use p2_placement::enumerate_matrices;
use p2_synthesis::baseline_allreduce;
use p2_topology::presets;

const NODES_PER_RACK: usize = 2;
const GPUS_PER_NODE: usize = 4;

fn main() {
    let kind = cost_model_from_args();
    println!("Rack-scale Table 3: AllReduce seconds across placements of the rack/node/GPU preset");
    println!("(cost model: {kind}; select with --cost-model alpha-beta|loggp|calibrated)\n");

    let mut global_max_ratio: f64 = 1.0;
    for racks in [2usize, 4] {
        for oversubscription in [1.0f64, 2.0, 4.0] {
            let system = presets::rack_node_gpu_system_oversubscribed(
                racks,
                NODES_PER_RACK,
                GPUS_PER_NODE,
                oversubscription,
            );
            let devices = system.num_devices();
            let axes = vec![4, devices / 4];
            let bytes = (1u64 << 26) as f64 * racks as f64 * 4.0;
            let config = P2Config::new(system.clone(), axes.clone(), vec![0])
                .with_bytes_per_device(bytes)
                .with_repeats(2)
                .with_seed(0xb2b2);
            let model = config.make_cost_model(kind).expect("cost model builds");
            let exec = Executor::new(
                &system,
                ExecConfig::new(NcclAlgo::Ring, bytes)
                    .with_repeats(2)
                    .with_seed(0xb2b2),
            )
            .expect("valid exec config");
            println!(
                "{} — {racks} racks x {NODES_PER_RACK} nodes x {GPUS_PER_NODE} GPUs, \
                 core switch {oversubscription}:1, axes {axes:?}",
                system.name()
            );
            println!(
                "  {:<26} {:>11} {:>11} {:>11} {:>11}",
                "parallelism matrix", "ax0 meas", "ax0 pred", "ax1 meas", "ax1 pred"
            );
            let matrices = enumerate_matrices(&system.hierarchy().arities(), &axes)
                .expect("axes match the system");
            let mut per_axis_times: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
            for matrix in &matrices {
                let mut row = Vec::new();
                for (axis, axis_times) in per_axis_times.iter_mut().enumerate() {
                    let baseline =
                        baseline_allreduce(matrix, &[axis]).expect("valid reduction axis");
                    let measured = exec.measure(&baseline);
                    let predicted = model.program_time(&baseline);
                    axis_times.push(measured);
                    row.push((measured, predicted));
                }
                println!(
                    "  {:<26} {:>11} {:>11} {:>11} {:>11}",
                    matrix.to_string(),
                    fmt_s(row[0].0),
                    fmt_s(row[0].1),
                    fmt_s(row[1].0),
                    fmt_s(row[1].1),
                );
            }
            for (axis, times) in per_axis_times.iter().enumerate() {
                let max = times.iter().copied().fold(f64::MIN, f64::max);
                let min = times.iter().copied().fold(f64::MAX, f64::min);
                if min > 0.0 {
                    let ratio = max / min;
                    global_max_ratio = global_max_ratio.max(ratio);
                    println!(
                        "  axis {axis}: max/min AllReduce ratio across matrices = {ratio:.1}x"
                    );
                }
            }
            println!();
        }
    }
    println!(
        "Result 1 at rack scale: AllReduce differs across parallelism matrices by up to \
         {global_max_ratio:.1}x"
    );
    println!(
        "(the deeper the hierarchy and the higher the oversubscription, the wider the spread)"
    );
}
