//! Shared plumbing for the benchmark harness: experiment definitions matching
//! the paper's evaluation (§4, §5, appendix) and small formatting helpers.
//!
//! Every table and figure of the paper has a corresponding binary in
//! `src/bin/` (see DESIGN.md §5 for the index); the criterion benches in
//! `benches/` measure the synthesis and simulation throughput reported in the
//! paper's "Synthesis time" / "Simulation time" columns.

#![deny(missing_docs)]

use std::sync::Arc;

use p2_core::{ExperimentResult, P2Builder, P2Config, P2Error, RunObserver, P2};

pub use p2_core::{run_batch, BatchOptions, BatchOutcome};
use p2_cost::{CachedCostModel, CostAccumulator, CostModel, CostModelKind, NcclAlgo};
use p2_placement::{for_each_matrix, MatrixControl, ParallelismMatrix};
use p2_synthesis::{HierarchyKind, Program, SinkControl, Synthesizer};
use p2_topology::{presets, SystemTopology};

/// Which GPU system a configuration runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Nodes of 16 A100 GPUs behind one NVSwitch and one NIC (Figure 9a).
    A100,
    /// Nodes of 8 V100 GPUs on an NVLink ring (Figure 9b, flattened as in §4).
    V100,
}

impl SystemKind {
    /// Builds the system topology for a node count.
    pub fn system(self, nodes: usize) -> SystemTopology {
        match self {
            SystemKind::A100 => presets::a100_system(nodes),
            SystemKind::V100 => presets::v100_system(nodes),
        }
    }

    /// GPUs per node for this system kind.
    pub fn gpus_per_node(self) -> usize {
        match self {
            SystemKind::A100 => 16,
            SystemKind::V100 => 8,
        }
    }
}

/// One experiment of the paper's evaluation: a system, a node count,
/// parallelism axes, reduction axes and the NCCL algorithm.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Short identifier used in the paper's tables (e.g. `"B"`, `"F"`, `"K1"`).
    pub id: &'static str,
    /// Which GPU system.
    pub system: SystemKind,
    /// Number of nodes.
    pub nodes: usize,
    /// Parallelism axis sizes.
    pub axes: Vec<usize>,
    /// Reduction axis indices.
    pub reduction: Vec<usize>,
    /// NCCL algorithm.
    pub algo: NcclAlgo,
}

impl ExperimentSpec {
    /// Creates a specification.
    pub fn new(
        id: &'static str,
        system: SystemKind,
        nodes: usize,
        axes: Vec<usize>,
        reduction: Vec<usize>,
        algo: NcclAlgo,
    ) -> Self {
        ExperimentSpec {
            id,
            system,
            nodes,
            axes,
            reduction,
            algo,
        }
    }

    /// The per-device buffer the paper uses: `2^29 × nodes` float32 elements.
    pub fn bytes_per_device(&self) -> f64 {
        (1u64 << 29) as f64 * self.nodes as f64 * 4.0
    }

    /// Builds the [`P2Config`] for this experiment.
    pub fn config(&self) -> P2Config {
        P2Config::new(
            self.system.system(self.nodes),
            self.axes.clone(),
            self.reduction.clone(),
        )
        .with_algo(self.algo)
        .with_bytes_per_device(self.bytes_per_device())
        .with_repeats(3)
        .with_seed(0xb2b2)
    }

    /// Starts a session builder preloaded with this experiment's settings
    /// (derived from [`ExperimentSpec::config`], so the two cannot drift),
    /// for callers that want to adjust the mode, retention or thread count
    /// before running.
    pub fn session(&self) -> P2Builder {
        P2Builder::from_config(self.config())
    }

    /// Runs the full pipeline for this experiment.
    ///
    /// # Panics
    ///
    /// Panics if the specification is internally inconsistent (axis product
    /// not matching the device count) — specifications in this crate are
    /// static and known-good.
    pub fn run(&self) -> ExperimentResult {
        self.session().run().expect("pipeline runs")
    }

    /// [`ExperimentSpec::run`] with a [`RunObserver`] receiving the sweep's
    /// progress events (e.g. a [`p2_core::ProgressObserver`] for the long
    /// table sweeps).
    ///
    /// # Panics
    ///
    /// Same as [`ExperimentSpec::run`].
    pub fn run_observed(&self, observer: &dyn RunObserver) -> ExperimentResult {
        self.session()
            .build()
            .expect("spec builds")
            .run_observed(observer)
            .expect("pipeline runs")
    }

    /// A human-readable description, e.g. `"4 nodes each with 16 A100, axes [16, 2, 2]"`.
    pub fn describe(&self) -> String {
        format!(
            "{} nodes each with {} {:?}, axes {:?}, reduce {:?}, {}",
            self.nodes,
            self.system.gpus_per_node(),
            self.system,
            self.axes,
            self.reduction,
            self.algo
        )
    }
}

/// Runs a batch of experiment specifications on **one** work-stealing pool:
/// every spec's placement-evaluation jobs are queued spec-major onto the same
/// scheduler and workers steal across spec boundaries, so the whole batch
/// respects a single global thread budget instead of oversubscribing with
/// nested per-spec pools. Results come back in spec order and are
/// bit-identical to serial per-spec runs, for any thread count.
///
/// `keep_top` bounds the per-placement retention of every spec (`None` runs
/// the exhaustive, keep-everything pipeline). Predictions use the default
/// α–β cost model; use [`run_specs_observed`] to select another model or to
/// watch progress, and [`run_specs_batch`] for the full scheduling knobs
/// (thread budget, steal seed, cross-spec bound/table sharing).
pub fn run_specs(specs: &[ExperimentSpec], keep_top: Option<usize>) -> Vec<ExperimentResult> {
    run_specs_observed(specs, keep_top, CostModelKind::AlphaBeta, &())
}

/// [`run_specs`] with an explicit [`CostModelKind`] (each spec builds the
/// model for its own system) and a [`RunObserver`] shared across every spec's
/// sweep — pair it with a [`p2_core::ProgressObserver`] totalled via
/// [`total_placements`] for aggregate progress/ETA reporting.
pub fn run_specs_observed(
    specs: &[ExperimentSpec],
    keep_top: Option<usize>,
    cost_model: CostModelKind,
    observer: &dyn RunObserver,
) -> Vec<ExperimentResult> {
    run_specs_batch(
        specs,
        keep_top,
        cost_model,
        &BatchOptions::default(),
        observer,
    )
    .expect("specs build and run")
    .results
}

/// The full batch entry point behind [`run_specs`]: builds one session per
/// spec ([`spec_sessions`]) and schedules them with [`p2_core::run_batch`],
/// exposing every [`BatchOptions`] knob and the scheduler telemetry in the
/// returned [`BatchOutcome`].
///
/// # Errors
///
/// Propagates builder validation failures and the first (in spec order)
/// pipeline error.
pub fn run_specs_batch(
    specs: &[ExperimentSpec],
    keep_top: Option<usize>,
    cost_model: CostModelKind,
    options: &BatchOptions,
    observer: &dyn RunObserver,
) -> Result<BatchOutcome, P2Error> {
    let sessions = spec_sessions(specs, keep_top, cost_model)?;
    run_batch(&sessions, options, observer)
}

/// Builds one ready-to-run [`P2`] session per spec, applying the retention
/// bound and cost model the batch entry points take.
///
/// # Errors
///
/// Propagates builder validation failures.
pub fn spec_sessions(
    specs: &[ExperimentSpec],
    keep_top: Option<usize>,
    cost_model: CostModelKind,
) -> Result<Vec<P2>, P2Error> {
    specs
        .iter()
        .map(|spec| {
            let mut session = spec.session().cost_model_kind(cost_model);
            if let Some(k) = keep_top {
                session = session.keep_top(k);
            }
            session.build()
        })
        .collect()
}

/// Parses `--threads N` from command-line arguments, defaulting to `0`
/// (= every available core) when absent — the shared CLI convention of the
/// rack-table and batch binaries.
///
/// # Panics
///
/// Panics with a usage message when `--threads` is present without a valid
/// count.
pub fn threads_from_args(args: &[String]) -> usize {
    match args.iter().position(|a| a == "--threads") {
        None => 0,
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("--threads needs a worker count, e.g. --threads 8")),
    }
}

/// The number of placements the specs will sweep in total, without
/// materializing any matrix — the `total` a
/// [`p2_core::ProgressObserver`] needs for its ETA column.
pub fn total_placements(specs: &[ExperimentSpec]) -> usize {
    specs
        .iter()
        .map(|spec| {
            let arities = spec.system.system(spec.nodes).hierarchy().arities();
            for_each_matrix(&arities, &spec.axes, &mut |_: &ParallelismMatrix| {
                MatrixControl::Continue
            })
            .expect("specs are valid")
        })
        .sum()
}

pub use p2_cost::cost_model_from_args;

/// Synthesizes reduction programs for every matrix on `threads` workers
/// (`0` = all cores, `1` = serial) and returns the total program count — the
/// placement × synthesis sweep the criterion `synthesis` bench times serially
/// and in parallel.
///
/// With `keep_top = None` every program set is materialized through
/// [`Synthesizer::synthesize`]; with `Some(k)` the sweep streams through
/// [`Synthesizer::for_each_program`], cloning at most the `k` shortest
/// programs per matrix while still counting every emitted program — the two
/// modes the `streaming_vs_materialized` bench compares. When a [`CostModel`]
/// is supplied, every emitted program is additionally lowered and predicted
/// through a fresh per-matrix [`CachedCostModel`], mirroring the pipeline's
/// costing path (the `cost_model` bench times exactly this). The returned
/// count is identical in every mode and for any thread count.
pub fn sweep_synthesis(
    matrices: &[ParallelismMatrix],
    reduction: &[usize],
    max_program_size: usize,
    threads: usize,
    keep_top: Option<usize>,
    cost: Option<&Arc<dyn CostModel>>,
) -> usize {
    p2_par::par_map_threads(threads, matrices, |_, m| {
        let synth = Synthesizer::new(m.clone(), reduction.to_vec(), HierarchyKind::ReductionAxes)
            .expect("valid synthesizer");
        let cache = cost.map(|model| CachedCostModel::new(Arc::clone(model)));
        let predict = |program: &Program| {
            if let Some(model) = &cache {
                let lowered = synth.lower(program).expect("synthesized programs lower");
                let mut acc = CostAccumulator::new(model);
                for step in &lowered.steps {
                    acc.push(step);
                }
                assert!(acc.seconds() >= 0.0, "admissibility violated");
            }
        };
        match keep_top {
            None => {
                let programs = synth.synthesize(max_program_size).programs;
                programs.iter().for_each(&predict);
                programs.len()
            }
            Some(k) => {
                // The stream arrives shortest-first, so bounded retention of
                // the k shortest programs is simply "clone the first k".
                let mut retained: Vec<Program> = Vec::new();
                let stats = synth.for_each_program(max_program_size, &mut |p: &Program| {
                    predict(p);
                    if retained.len() < k {
                        retained.push(p.clone());
                    }
                    SinkControl::Continue
                });
                stats.programs_emitted
            }
        }
    })
    .into_iter()
    .sum()
}

/// The Table 4 experiment specifications (rows F–L of the paper).
pub fn table4_specs() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec::new(
            "F",
            SystemKind::A100,
            2,
            vec![8, 4],
            vec![0],
            NcclAlgo::Ring,
        ),
        ExperimentSpec::new(
            "G",
            SystemKind::A100,
            4,
            vec![4, 16],
            vec![0],
            NcclAlgo::Tree,
        ),
        ExperimentSpec::new(
            "H",
            SystemKind::A100,
            4,
            vec![16, 2, 2],
            vec![0, 2],
            NcclAlgo::Ring,
        ),
        ExperimentSpec::new(
            "I",
            SystemKind::A100,
            4,
            vec![2, 2, 16],
            vec![0, 2],
            NcclAlgo::Ring,
        ),
        ExperimentSpec::new("J", SystemKind::A100, 4, vec![64], vec![0], NcclAlgo::Tree),
        ExperimentSpec::new(
            "K",
            SystemKind::V100,
            4,
            vec![8, 2, 2],
            vec![0, 2],
            NcclAlgo::Ring,
        ),
        ExperimentSpec::new("L", SystemKind::V100, 4, vec![32], vec![0], NcclAlgo::Ring),
    ]
}

/// The Table 3 parallelism-axes groups (A–C on A100, E on V100), evaluated for
/// both reduction axes and both NCCL algorithms.
pub fn table3_specs() -> Vec<(&'static str, SystemKind, usize, Vec<usize>)> {
    vec![
        ("A", SystemKind::A100, 4, vec![2, 32]),
        ("B", SystemKind::A100, 4, vec![4, 16]),
        ("C", SystemKind::A100, 4, vec![8, 8]),
        ("E", SystemKind::V100, 4, vec![8, 4]),
    ]
}

/// The full appendix-table sweep: every parallelism-axes / reduction-axes
/// combination the paper reports, for a given system and node count.
pub fn appendix_axes(system: SystemKind, nodes: usize) -> Vec<(Vec<usize>, Vec<Vec<usize>>)> {
    let devices = nodes * system.gpus_per_node();
    let mut out: Vec<(Vec<usize>, Vec<Vec<usize>>)> = Vec::new();
    // Single axis covering the whole machine.
    out.push((vec![devices], vec![vec![0]]));
    // Two axes [k, devices / k] for every power-of-two split, reducing on each axis.
    let mut k = 2usize;
    while k < devices {
        out.push((vec![k, devices / k], vec![vec![0], vec![1]]));
        k *= 2;
    }
    // Three-axis combinations reducing on the 0th and 2nd axes, as in the paper.
    let three_axis: &[Vec<usize>] = match (system, nodes) {
        (SystemKind::A100, 4) => &[vec![16, 2, 2], vec![8, 2, 4], vec![4, 2, 8], vec![2, 2, 16]],
        (SystemKind::V100, 4) => &[vec![2, 2, 8], vec![8, 2, 2]],
        _ => &[],
    };
    for axes in three_axis {
        out.push((axes.clone(), vec![vec![0, 2]]));
    }
    out
}

/// Formats seconds with three decimals, using a dash for non-finite values.
pub fn fmt_s(seconds: f64) -> String {
    if seconds.is_finite() {
        format!("{seconds:.3}")
    } else {
        "-".to_string()
    }
}

/// Formats a speedup as `1.23x`.
pub fn fmt_speedup(speedup: f64) -> String {
    format!("{speedup:.2}x")
}

/// Aggregate statistics across experiments for the paper's Result 5 headline:
/// the fraction of mappings whose best synthesized program beats AllReduce,
/// plus the average and maximum speedup.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpeedupSummary {
    /// Number of (mapping, reduction) combinations considered.
    pub mappings: usize,
    /// Mappings where some synthesized program strictly beats AllReduce.
    pub improved: usize,
    /// Average speedup over all mappings (1.0 counted when nothing improved).
    pub average_speedup: f64,
    /// Maximum speedup observed.
    pub max_speedup: f64,
}

impl SpeedupSummary {
    /// Accumulates the placements of an experiment result.
    pub fn add(&mut self, result: &ExperimentResult) {
        for placement in &result.placements {
            self.mappings += 1;
            if placement.programs_beating_allreduce() > 0 {
                self.improved += 1;
            }
            let speedup = placement.speedup();
            self.max_speedup = self.max_speedup.max(speedup);
            // Incremental mean.
            self.average_speedup += (speedup - self.average_speedup) / self.mappings as f64;
        }
    }

    /// The fraction of mappings improved by synthesis.
    pub fn improved_fraction(&self) -> f64 {
        if self.mappings == 0 {
            0.0
        } else {
            self.improved as f64 / self.mappings as f64
        }
    }
}

impl std::fmt::Display for SpeedupSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} mappings improved ({:.0}%), average speedup {:.2}x, max {:.2}x",
            self.improved,
            self.mappings,
            self.improved_fraction() * 100.0,
            self.average_speedup,
            self.max_speedup
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_core::P2;

    #[test]
    fn specs_are_consistent_with_their_systems() {
        for spec in table4_specs() {
            let devices = spec.system.system(spec.nodes).num_devices();
            let product: usize = spec.axes.iter().product();
            assert_eq!(
                devices, product,
                "spec {} axes do not cover the system",
                spec.id
            );
            assert!(spec.config().validate().is_ok());
            assert!(spec.describe().contains("nodes"));
        }
    }

    #[test]
    fn appendix_sweep_axes_cover_their_machines() {
        for (system, nodes) in [
            (SystemKind::A100, 2),
            (SystemKind::A100, 4),
            (SystemKind::V100, 2),
            (SystemKind::V100, 4),
        ] {
            let devices = nodes * system.gpus_per_node();
            for (axes, reductions) in appendix_axes(system, nodes) {
                assert_eq!(axes.iter().product::<usize>(), devices);
                assert!(!reductions.is_empty());
                for r in reductions {
                    assert!(r.iter().all(|&a| a < axes.len()));
                }
            }
        }
    }

    #[test]
    fn speedup_summary_aggregates() {
        let spec = ExperimentSpec::new(
            "tiny",
            SystemKind::A100,
            2,
            vec![8, 4],
            vec![0],
            NcclAlgo::Ring,
        );
        // Use a small buffer to keep the test fast.
        let config = spec.config().with_bytes_per_device(1.0e8).with_repeats(1);
        let result = P2::new(config).unwrap().run().unwrap();
        let mut summary = SpeedupSummary::default();
        summary.add(&result);
        assert_eq!(summary.mappings, result.placements.len());
        assert!(summary.max_speedup >= 1.0);
        assert!(summary.average_speedup >= 1.0);
        assert!(!summary.to_string().is_empty());
    }

    #[test]
    fn parallel_spec_runs_match_serial_runs() {
        let spec = ExperimentSpec::new(
            "tiny",
            SystemKind::A100,
            2,
            vec![8, 4],
            vec![0],
            NcclAlgo::Ring,
        );
        let serial = P2::new(spec.config().with_threads(1))
            .unwrap()
            .run()
            .unwrap();
        let parallel = &run_specs(std::slice::from_ref(&spec), None)[0];
        assert_eq!(serial.placements.len(), parallel.placements.len());
        for (a, b) in serial.placements.iter().zip(&parallel.placements) {
            assert_eq!(a.matrix.to_string(), b.matrix.to_string());
            assert_eq!(a.allreduce_measured, b.allreduce_measured);
            for (pa, pb) in a.programs.iter().zip(&b.programs) {
                assert_eq!(pa.signature(), pb.signature());
                assert_eq!(pa.measured_seconds, pb.measured_seconds);
                assert_eq!(pa.predicted_seconds, pb.predicted_seconds);
            }
        }
    }

    #[test]
    fn sweep_synthesis_thread_count_and_retention_do_not_change_the_count() {
        let matrices = p2_placement::enumerate_matrices(&[2, 16], &[8, 4]).expect("valid config");
        let serial = sweep_synthesis(&matrices, &[0], 4, 1, None, None);
        assert!(serial > 0);
        for threads in [0, 2, 4] {
            assert_eq!(
                serial,
                sweep_synthesis(&matrices, &[0], 4, threads, None, None)
            );
        }
        // Streaming with bounded retention counts exactly the same programs.
        for keep_top in [1, 10, usize::MAX] {
            assert_eq!(
                serial,
                sweep_synthesis(&matrices, &[0], 4, 1, Some(keep_top), None)
            );
        }
        // Costing the stream through a cached model changes nothing either.
        let config = P2Config::new(SystemKind::A100.system(2), vec![8, 4], vec![0]);
        let model = config.make_cost_model(CostModelKind::AlphaBeta).unwrap();
        assert_eq!(
            serial,
            sweep_synthesis(&matrices, &[0], 4, 2, Some(10), Some(&model))
        );
    }

    #[test]
    fn total_placements_matches_the_materialized_enumeration() {
        let specs = table4_specs();
        let expected: usize = specs
            .iter()
            .map(|spec| {
                let arities = spec.system.system(spec.nodes).hierarchy().arities();
                p2_placement::enumerate_matrices(&arities, &spec.axes)
                    .expect("valid spec")
                    .len()
            })
            .sum();
        assert_eq!(total_placements(&specs), expected);
    }

    #[test]
    fn bounded_run_specs_retain_fewer_but_agree_on_the_best_program() {
        let spec = ExperimentSpec::new(
            "tiny",
            SystemKind::A100,
            2,
            vec![8, 4],
            vec![0],
            NcclAlgo::Ring,
        );
        let exhaustive = &run_specs(std::slice::from_ref(&spec), None)[0];
        let bounded = &run_specs(std::slice::from_ref(&spec), Some(3))[0];
        assert_eq!(exhaustive.total_programs(), bounded.total_programs());
        assert!(bounded.total_programs_retained() < exhaustive.total_programs_retained());
        assert!(bounded.total_programs_pruned() > 0);
        let a = exhaustive.best_overall().unwrap();
        let b = bounded.best_overall().unwrap();
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.measured_seconds, b.measured_seconds);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_s(1.23456), "1.235");
        assert_eq!(fmt_s(f64::INFINITY), "-");
        assert_eq!(fmt_speedup(1.5), "1.50x");
    }
}
