//! Plan requests and their content addresses.
//!
//! A [`PlanRequest`] is the `ExperimentSpec`-shaped unit the service plans:
//! a system topology plus the result-relevant experiment knobs. Its
//! [`fingerprint`](PlanRequest::fingerprint) digests the canonical form from
//! [`p2_core::canonical`] — two requests with the same fingerprint are
//! guaranteed bit-identical plans by the workspace's determinism pins, which
//! is what makes the fingerprint safe to use as a cache address that
//! outlives the process.

use p2_core::{canonical_session, P2Builder, P2Config, P2Error, RunMode, P2};
use p2_cost::{CostModelKind, NcclAlgo};
use p2_hash::Fingerprint;
use p2_topology::SystemTopology;

/// How many programs a plan carries by default.
pub const DEFAULT_TOP_K: usize = 3;

/// One plan request: a topology, the experiment axes, and every
/// result-relevant knob. Construct with [`PlanRequest::new`] and refine with
/// the `with_*` methods; unset knobs keep the paper defaults from
/// [`P2Config::new`].
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// The system to plan for.
    pub system: SystemTopology,
    /// Parallelism axis sizes (product must equal the device count).
    pub parallelism_axes: Vec<usize>,
    /// Reduction axes (indices into `parallelism_axes`; order is
    /// significant — it feeds the synthesis hierarchy's axis factors).
    pub reduction_axes: Vec<usize>,
    /// NCCL algorithm.
    pub algo: NcclAlgo,
    /// Per-device buffer bytes; `None` keeps the paper default.
    pub bytes_per_device: Option<f64>,
    /// Program-size limit; `None` keeps the default (5).
    pub max_program_size: Option<usize>,
    /// Noise fraction; `None` keeps the default.
    pub noise_fraction: Option<f64>,
    /// Substrate noise seed; `None` keeps the default.
    pub seed: Option<u64>,
    /// Simulated repeats per measurement; `None` keeps the default.
    pub repeats: Option<usize>,
    /// Bounded per-placement retention; `None` retains everything.
    pub keep_top: Option<usize>,
    /// Pruning slack (only meaningful with `keep_top`); `None` keeps the
    /// default.
    pub prune_slack: Option<f64>,
    /// The run mode.
    pub mode: RunMode,
    /// Which cost model to build.
    pub cost_model: CostModelKind,
    /// How many top programs the plan carries.
    pub top_k: usize,
}

impl PlanRequest {
    /// A request with the paper-default knobs.
    pub fn new(
        system: SystemTopology,
        parallelism_axes: Vec<usize>,
        reduction_axes: Vec<usize>,
    ) -> Self {
        PlanRequest {
            system,
            parallelism_axes,
            reduction_axes,
            algo: NcclAlgo::Ring,
            bytes_per_device: None,
            max_program_size: None,
            noise_fraction: None,
            seed: None,
            repeats: None,
            keep_top: None,
            prune_slack: None,
            mode: RunMode::Measure,
            cost_model: CostModelKind::AlphaBeta,
            top_k: DEFAULT_TOP_K,
        }
    }

    /// Sets the NCCL algorithm.
    pub fn with_algo(mut self, algo: NcclAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Sets the per-device buffer size.
    pub fn with_bytes_per_device(mut self, bytes: f64) -> Self {
        self.bytes_per_device = Some(bytes);
        self
    }

    /// Sets the program-size limit.
    pub fn with_max_program_size(mut self, size: usize) -> Self {
        self.max_program_size = Some(size);
        self
    }

    /// Sets the noise fraction.
    pub fn with_noise(mut self, noise_fraction: f64) -> Self {
        self.noise_fraction = Some(noise_fraction);
        self
    }

    /// Sets the noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the repeats.
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        self.repeats = Some(repeats);
        self
    }

    /// Sets bounded retention.
    pub fn with_keep_top(mut self, keep_top: usize) -> Self {
        self.keep_top = Some(keep_top);
        self
    }

    /// Sets the pruning slack.
    pub fn with_prune_slack(mut self, prune_slack: f64) -> Self {
        self.prune_slack = Some(prune_slack);
        self
    }

    /// Sets the run mode.
    pub fn with_mode(mut self, mode: RunMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the cost model kind.
    pub fn with_cost_model(mut self, kind: CostModelKind) -> Self {
        self.cost_model = kind;
        self
    }

    /// Sets how many top programs the plan carries.
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k;
        self
    }

    /// The resolved [`P2Config`] — request knobs over paper defaults. The
    /// cost model is *not* built here (building a calibrated model runs
    /// measurement probes); [`PlanRequest::session`] resolves the kind at
    /// build time.
    fn config(&self) -> P2Config {
        let mut config = P2Config::new(
            self.system.clone(),
            self.parallelism_axes.clone(),
            self.reduction_axes.clone(),
        );
        config.algo = self.algo;
        if let Some(bytes) = self.bytes_per_device {
            config.bytes_per_device = bytes;
        }
        if let Some(size) = self.max_program_size {
            config.max_program_size = size;
        }
        if let Some(noise) = self.noise_fraction {
            config.noise_fraction = noise;
        }
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        if let Some(repeats) = self.repeats {
            config.repeats = repeats;
        }
        config.keep_top = self.keep_top;
        if let Some(slack) = self.prune_slack {
            config.prune_slack = slack;
        }
        config
    }

    /// The canonical serialized form this request's fingerprint digests:
    /// [`p2_core::canonical_session`] over the resolved configuration, plus
    /// the cost-model *kind* token (the model itself is not built — its
    /// behavior is fully determined by kind + configuration) and the plan's
    /// `top_k`.
    pub fn canonical_form(&self) -> String {
        let mut out = canonical_session(&self.config(), self.mode);
        out.push_str("cost_model_kind=");
        out.push_str(self.cost_model.as_str());
        out.push('\n');
        out.push_str(&format!("plan.top_k={}\n", self.top_k));
        out
    }

    /// The content address of this request.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint::of_bytes(self.canonical_form().as_bytes())
    }

    /// Builds the runnable session (validating the request). This is the
    /// miss path; hits never get here.
    pub fn session(&self) -> Result<P2, P2Error> {
        P2Builder::from_config(self.config())
            .cost_model_kind(self.cost_model)
            .mode(self.mode)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_topology::presets;

    fn base() -> PlanRequest {
        PlanRequest::new(presets::a100_system(2), vec![8, 4], vec![0])
    }

    #[test]
    fn construction_order_does_not_change_the_fingerprint() {
        let a = base().with_seed(7).with_bytes_per_device(1.0e9);
        let b = base().with_bytes_per_device(1.0e9).with_seed(7);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn explicit_defaults_match_implicit_defaults() {
        // Spelling out the default value of a knob is the same request.
        let implicit = base();
        let explicit = base()
            .with_algo(NcclAlgo::Ring)
            .with_mode(RunMode::Measure)
            .with_cost_model(CostModelKind::AlphaBeta);
        assert_eq!(implicit.fingerprint(), explicit.fingerprint());
    }

    #[test]
    fn each_knob_changes_the_fingerprint() {
        let reference = base().fingerprint();
        let variants = [
            base().with_algo(NcclAlgo::Tree),
            base().with_bytes_per_device(1.0e9),
            base().with_max_program_size(4),
            base().with_noise(0.0),
            base().with_seed(1),
            base().with_repeats(2),
            base().with_keep_top(8),
            base().with_prune_slack(0.25),
            base().with_mode(RunMode::Shortlist(10)),
            base().with_cost_model(CostModelKind::LogGp),
            base().with_top_k(5),
        ];
        for (index, variant) in variants.iter().enumerate() {
            assert_ne!(
                variant.fingerprint(),
                reference,
                "variant {index} should change the fingerprint"
            );
        }
    }

    #[test]
    fn system_renaming_is_representation_invisible() {
        let renamed = SystemTopology::with_name(
            "other-label",
            presets::a100_system(2).hierarchy().clone(),
            presets::a100_system(2).links().to_vec(),
        )
        .expect("valid system");
        let request = PlanRequest::new(renamed, vec![8, 4], vec![0]);
        assert_eq!(request.fingerprint(), base().fingerprint());
    }
}
