//! The line-delimited JSON wire protocol of `plan_service`.
//!
//! One request per line, one response per line, over a plain TCP stream.
//! Requests are JSON objects dispatched on `"op"`:
//!
//! * `{"op":"ping"}` → `{"ok":true,"pong":true}`
//! * `{"op":"stats"}` → `{"ok":true, ...counter fields...}`
//! * `{"op":"shutdown"}` → `{"ok":true,"shutting_down":true}` and the
//!   server stops accepting connections.
//! * `{"op":"plan", ...}` → a plan response (below).
//!
//! A plan request names a preset topology and the experiment knobs:
//!
//! ```json
//! {"op":"plan","tenant":"alice","system":"a100","nodes":2,
//!  "axes":[8,4],"reduction":[0],"algo":"ring","mode":"measure",
//!  "cost_model":"alpha-beta","bytes_per_device":1e9,"repeats":2}
//! ```
//!
//! `system` is one of `a100` / `v100` / `v100-pcie` (with `nodes`),
//! `figure2a`, or `rack` (with `racks`, `nodes_per_rack`, `gpus`, and an
//! optional `oversubscription` ratio). Optional knobs mirror
//! [`PlanRequest`]: `max_program_size`, `noise`, `seed`, `repeats`,
//! `keep_top`, `prune_slack`, `top_k`, `shortlist` (with
//! `"mode":"shortlist"`). The response carries the plan plus its request
//! telemetry:
//!
//! ```json
//! {"ok":true,"source":"warm","fingerprint":"…32 hex…","latency_us":120,
//!  "queue_depth":0,"label":"…","entries":[…]}
//! ```
//!
//! Errors come back as `{"ok":false,"error":"…","kind":"…"}` and never
//! close the connection; parse failures of one line only fail that line.

use p2_core::RunMode;
use p2_cost::{CostModelKind, NcclAlgo};
use p2_topology::presets;

use crate::error::ServiceError;
use crate::json::{Json, JsonObject};
use crate::planner::{PlanResponse, PlannerStats};
use crate::request::PlanRequest;

/// A parsed wire request.
#[derive(Debug, Clone)]
pub enum WireRequest {
    /// Liveness probe.
    Ping,
    /// Counter snapshot.
    Stats,
    /// Stop the server.
    Shutdown,
    /// Plan a request on behalf of a tenant.
    Plan {
        /// The tenant the fair scheduler accounts this request to.
        tenant: String,
        /// The decoded plan request.
        request: Box<PlanRequest>,
    },
}

fn get_usize(json: &Json, key: &str) -> Result<Option<usize>, ServiceError> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(value) => value.as_u64().map(|v| Some(v as usize)).ok_or_else(|| {
            ServiceError::Protocol(format!("`{key}` must be a non-negative integer"))
        }),
    }
}

fn get_list(json: &Json, key: &str) -> Result<Option<Vec<usize>>, ServiceError> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(value) => {
            let items = value
                .as_arr()
                .ok_or_else(|| ServiceError::Protocol(format!("`{key}` must be an array")))?;
            items
                .iter()
                .map(|item| {
                    item.as_u64().map(|v| v as usize).ok_or_else(|| {
                        ServiceError::Protocol(format!("`{key}` entries must be integers"))
                    })
                })
                .collect::<Result<Vec<usize>, ServiceError>>()
                .map(Some)
        }
    }
}

fn parse_system(json: &Json) -> Result<p2_topology::SystemTopology, ServiceError> {
    let name = json
        .get("system")
        .and_then(Json::as_str)
        .ok_or_else(|| ServiceError::Protocol("`system` is required".to_string()))?;
    let nodes = get_usize(json, "nodes")?.unwrap_or(2);
    match name {
        "a100" => Ok(presets::a100_system(nodes)),
        "v100" => Ok(presets::v100_system(nodes)),
        "v100-pcie" => Ok(presets::v100_pcie_system(nodes)),
        "figure2a" => Ok(presets::figure2a_system()),
        "rack" => {
            let racks = get_usize(json, "racks")?.unwrap_or(2);
            let nodes_per_rack = get_usize(json, "nodes_per_rack")?.unwrap_or(2);
            let gpus = get_usize(json, "gpus")?.unwrap_or(4);
            match json.get("oversubscription").and_then(Json::as_f64) {
                Some(ratio) => Ok(presets::rack_node_gpu_system_oversubscribed(
                    racks,
                    nodes_per_rack,
                    gpus,
                    ratio,
                )),
                None => Ok(presets::rack_node_gpu_system(racks, nodes_per_rack, gpus)),
            }
        }
        other => Err(ServiceError::Protocol(format!(
            "unknown system preset `{other}` (expected a100, v100, v100-pcie, figure2a, or rack)"
        ))),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// [`ServiceError::Protocol`] describing the first problem found.
pub fn parse_request(line: &str) -> Result<WireRequest, ServiceError> {
    let json = Json::parse(line).map_err(ServiceError::Protocol)?;
    let op = json
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServiceError::Protocol("`op` is required".to_string()))?;
    match op {
        "ping" => Ok(WireRequest::Ping),
        "stats" => Ok(WireRequest::Stats),
        "shutdown" => Ok(WireRequest::Shutdown),
        "plan" => {
            let system = parse_system(&json)?;
            let axes = get_list(&json, "axes")?
                .ok_or_else(|| ServiceError::Protocol("`axes` is required".to_string()))?;
            let reduction = get_list(&json, "reduction")?
                .ok_or_else(|| ServiceError::Protocol("`reduction` is required".to_string()))?;
            let mut request = PlanRequest::new(system, axes, reduction);
            if let Some(algo) = json.get("algo").and_then(Json::as_str) {
                request.algo = match algo {
                    "ring" => NcclAlgo::Ring,
                    "tree" => NcclAlgo::Tree,
                    other => {
                        return Err(ServiceError::Protocol(format!(
                            "unknown algo `{other}` (expected ring or tree)"
                        )))
                    }
                };
            }
            if let Some(kind) = json.get("cost_model").and_then(Json::as_str) {
                request.cost_model = kind
                    .parse::<CostModelKind>()
                    .map_err(|_| ServiceError::Protocol(format!("unknown cost model `{kind}`")))?;
            }
            if let Some(mode) = json.get("mode").and_then(Json::as_str) {
                request.mode = match mode {
                    "measure" => RunMode::Measure,
                    "predict" | "predict-only" => RunMode::PredictOnly,
                    "shortlist" => {
                        let n = get_usize(&json, "shortlist")?.ok_or_else(|| {
                            ServiceError::Protocol(
                                "`shortlist` length is required with mode=shortlist".to_string(),
                            )
                        })?;
                        RunMode::Shortlist(n)
                    }
                    other => {
                        return Err(ServiceError::Protocol(format!(
                            "unknown mode `{other}` (expected measure, predict, or shortlist)"
                        )))
                    }
                };
            }
            request.bytes_per_device = json.get("bytes_per_device").and_then(Json::as_f64);
            request.noise_fraction = json.get("noise").and_then(Json::as_f64);
            request.seed = json.get("seed").and_then(Json::as_u64);
            request.max_program_size = get_usize(&json, "max_program_size")?;
            request.repeats = get_usize(&json, "repeats")?;
            request.keep_top = get_usize(&json, "keep_top")?;
            request.prune_slack = json.get("prune_slack").and_then(Json::as_f64);
            if let Some(top_k) = get_usize(&json, "top_k")? {
                request.top_k = top_k;
            }
            let tenant = json
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or("default")
                .to_string();
            Ok(WireRequest::Plan {
                tenant,
                request: Box::new(request),
            })
        }
        other => Err(ServiceError::Protocol(format!("unknown op `{other}`"))),
    }
}

/// Renders a successful plan response line.
pub fn encode_plan_response(response: &PlanResponse) -> String {
    let entries: Vec<Json> = response
        .plan
        .entries
        .iter()
        .map(|entry| {
            JsonObject::new()
                .push("matrix", Json::Str(entry.matrix.clone()))
                .push("signature", Json::Str(entry.signature.clone()))
                .push("program", Json::Str(entry.program.clone()))
                .push("predicted_seconds", Json::Num(entry.predicted_seconds))
                .push("measured_seconds", Json::Num(entry.measured_seconds))
                .build()
        })
        .collect();
    JsonObject::new()
        .push("ok", Json::Bool(true))
        .push("source", Json::Str(response.source.as_str().to_string()))
        .push("fingerprint", Json::Str(response.fingerprint.to_string()))
        .push("latency_us", Json::Num(response.latency.as_micros() as f64))
        .push("queue_depth", Json::Num(response.queue_depth as f64))
        .push("label", Json::Str(response.plan.label.clone()))
        .push(
            "placements",
            Json::Num(response.plan.stats.placements as f64),
        )
        .push("programs", Json::Num(response.plan.stats.programs as f64))
        .push("entries", Json::Arr(entries))
        .build()
        .to_string()
}

/// Renders a stats response line.
pub fn encode_stats(stats: &PlannerStats) -> String {
    JsonObject::new()
        .push("ok", Json::Bool(true))
        .push("requests", Json::Num(stats.requests as f64))
        .push("warm_hits", Json::Num(stats.warm_hits as f64))
        .push("disk_hits", Json::Num(stats.disk_hits as f64))
        .push("coalesced", Json::Num(stats.coalesced as f64))
        .push("syntheses", Json::Num(stats.syntheses as f64))
        .push("batches", Json::Num(stats.batches as f64))
        .push("rejected", Json::Num(stats.rejected as f64))
        .push("store_errors", Json::Num(stats.store_errors as f64))
        .push("queue_depth", Json::Num(stats.queue_depth as f64))
        .push("peak_queue_depth", Json::Num(stats.peak_queue_depth as f64))
        .push("lru_len", Json::Num(stats.lru_len as f64))
        .push("evictions", Json::Num(stats.evictions as f64))
        .push("size_evictions", Json::Num(stats.size_evictions as f64))
        .push("ttl_evictions", Json::Num(stats.ttl_evictions as f64))
        .push("resident_bytes", Json::Num(stats.resident_bytes as f64))
        .push("disk_misreads", Json::Num(stats.disk_misreads as f64))
        .push("snapshot_loads", Json::Num(stats.snapshot_loads as f64))
        .push("snapshot_saves", Json::Num(stats.snapshot_saves as f64))
        .push(
            "snapshot_load_micros",
            Json::Num(stats.snapshot_load_micros as f64),
        )
        .push(
            "snapshot_save_micros",
            Json::Num(stats.snapshot_save_micros as f64),
        )
        .push("warm_states", Json::Num(stats.warm_states as f64))
        .build()
        .to_string()
}

/// Renders an error response line, tagging the error kind for clients that
/// branch on it (`overloaded` → back off, `protocol` → fix the request).
pub fn encode_error(error: &ServiceError) -> String {
    let kind = match error {
        ServiceError::Pipeline(_) => "pipeline",
        ServiceError::Overloaded { .. } => "overloaded",
        ServiceError::ShuttingDown => "shutting_down",
        ServiceError::Store(_) => "store",
        ServiceError::Protocol(_) => "protocol",
    };
    JsonObject::new()
        .push("ok", Json::Bool(false))
        .push("kind", Json::Str(kind.to_string()))
        .push("error", Json::Str(error.to_string()))
        .build()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_requests_decode_to_the_same_fingerprint_as_native_ones() {
        let line = r#"{"op":"plan","tenant":"alice","system":"a100","nodes":2,
                       "axes":[8,4],"reduction":[0],"algo":"ring",
                       "bytes_per_device":1e9,"repeats":2,"seed":7}"#
            .replace('\n', " ");
        let parsed = parse_request(&line).unwrap();
        let WireRequest::Plan { tenant, request } = parsed else {
            panic!("expected a plan request");
        };
        assert_eq!(tenant, "alice");
        let native = PlanRequest::new(presets::a100_system(2), vec![8, 4], vec![0])
            .with_bytes_per_device(1.0e9)
            .with_repeats(2)
            .with_seed(7);
        assert_eq!(request.fingerprint(), native.fingerprint());
    }

    #[test]
    fn shortlist_mode_and_rack_preset_decode() {
        let line = r#"{"op":"plan","system":"rack","racks":2,"nodes_per_rack":2,"gpus":4,
                       "axes":[4,4],"reduction":[0],"mode":"shortlist","shortlist":10}"#
            .replace('\n', " ");
        let WireRequest::Plan { request, .. } = parse_request(&line).unwrap() else {
            panic!("expected a plan request");
        };
        assert_eq!(request.mode, RunMode::Shortlist(10));
        assert_eq!(request.system.num_devices(), 16);
    }

    #[test]
    fn control_ops_decode() {
        assert!(matches!(
            parse_request(r#"{"op":"ping"}"#).unwrap(),
            WireRequest::Ping
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#).unwrap(),
            WireRequest::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            WireRequest::Shutdown
        ));
    }

    #[test]
    fn bad_requests_fail_with_protocol_errors() {
        for bad in [
            "not json",
            r#"{"op":"warp"}"#,
            r#"{"op":"plan","system":"quantum","axes":[2],"reduction":[0]}"#,
            r#"{"op":"plan","system":"a100","reduction":[0]}"#,
            r#"{"op":"plan","system":"a100","axes":[8,4],"reduction":[0],"mode":"shortlist"}"#,
            r#"{"op":"plan","system":"a100","axes":[8,-4],"reduction":[0]}"#,
        ] {
            assert!(
                matches!(parse_request(bad), Err(ServiceError::Protocol(_))),
                "{bad} should fail"
            );
        }
    }

    #[test]
    fn error_lines_tag_their_kind() {
        let line = encode_error(&ServiceError::Overloaded {
            queue_depth: 64,
            capacity: 64,
        });
        let json = Json::parse(&line).unwrap();
        assert_eq!(json.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("overloaded"));
    }
}
