//! The planner front end: admission, single-flight dedup, fair batching
//! onto one `p2_par` pool, and the plan-store read/write path.
//!
//! One background worker thread drains the admission queue in fair
//! round-robin order across tenants, builds the queued requests into `P2`
//! sessions, and runs each batch through [`p2_core::run_batch`] on a single
//! work-stealing pool. Everything else — cache probes, coalescing, refusal
//! — happens synchronously on the caller's thread, so warm hits never touch
//! the worker at all.
//!
//! **Lock order** (outermost first): `pending` → `store` → `queue`. Each
//! [`PendingPlan`]'s own slot mutex is a leaf acquired with none of the
//! above held. Violating this order is the only way this module can
//! deadlock; every multi-lock section below follows it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use p2_collectives::SharedTables;
use p2_core::{
    run_batch, BatchOptions, RunObserver, TableSnapshot, TableStore, TableStoreStats, P2,
};
use p2_hash::{Fingerprint, FxHashMap};
use p2_synthesis::MemoBank;

use crate::error::ServiceError;
use crate::plan::Plan;
use crate::request::PlanRequest;
use crate::store::{PlanSource, PlanStore};

/// Planner tuning knobs. `Default` gives a service-ready middle ground;
/// tests tighten `queue_capacity`/`lru_capacity` to force the edges.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Worker threads of the shared synthesis pool (`0` = all cores).
    pub threads: usize,
    /// Steal-schedule seed of the pool (results are bit-identical for any
    /// value; exposed so tests can vary it).
    pub steal_seed: u64,
    /// Maximum queued (admitted, not yet planned) requests before new
    /// misses are refused with [`ServiceError::Overloaded`]. Coalescing
    /// onto an in-flight request never counts against this.
    pub queue_capacity: usize,
    /// Maximum requests drained into one `run_batch` call.
    pub max_batch: usize,
    /// In-memory LRU capacity of the plan store.
    pub lru_capacity: usize,
    /// Persistent store directory; `None` keeps plans in memory only.
    pub store_dir: Option<std::path::PathBuf>,
    /// Byte budget for resident plans; `None` means unlimited. Forwarded to
    /// [`PlanStore::with_max_bytes`] — exceeding it evicts from the LRU end
    /// until the store fits.
    pub store_max_bytes: Option<u64>,
    /// Maximum resident age of a cached plan; `None` means plans never
    /// expire. Forwarded to [`PlanStore::with_ttl`].
    pub store_ttl: Option<Duration>,
    /// Keep one [`SharedTables`] across every batch, so later syntheses
    /// reuse interned states and memoized collective applications from
    /// earlier ones (result-invisible; pinned by the determinism suite).
    pub warm_tables: bool,
    /// Cross-run table-store directory. When set, the planner keeps one
    /// [`SharedTables`] + [`MemoBank`] pair *per table key* (instead of the
    /// single `warm_tables` interner), loads the key's snapshot the first
    /// time a batch needs it, and saves the merged tables after every batch
    /// that touched the key — so a restarted planner warm-starts from disk.
    /// Result-invisible, like `warm_tables`.
    pub tables_dir: Option<std::path::PathBuf>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            threads: 0,
            steal_seed: 0,
            queue_capacity: 64,
            max_batch: 8,
            lru_capacity: 256,
            store_dir: None,
            store_max_bytes: None,
            store_ttl: None,
            warm_tables: true,
            tables_dir: None,
        }
    }
}

/// A snapshot of the planner's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Requests received (including refused ones).
    pub requests: u64,
    /// Served from the in-memory LRU.
    pub warm_hits: u64,
    /// Served from the on-disk store.
    pub disk_hits: u64,
    /// Attached to another request's in-flight synthesis.
    pub coalesced: u64,
    /// Sessions actually synthesized.
    pub syntheses: u64,
    /// `run_batch` calls issued.
    pub batches: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Plans that synthesized fine but failed to persist.
    pub store_errors: u64,
    /// Current admission-queue depth.
    pub queue_depth: usize,
    /// Highest queue depth observed at any admission.
    pub peak_queue_depth: u64,
    /// Plans currently in the LRU.
    pub lru_len: usize,
    /// LRU evictions so far.
    pub evictions: u64,
    /// Evictions forced by [`PlannerConfig::store_max_bytes`].
    pub size_evictions: u64,
    /// Expiries forced by [`PlannerConfig::store_ttl`].
    pub ttl_evictions: u64,
    /// Estimated bytes of the plans currently resident in the LRU.
    pub resident_bytes: u64,
    /// Disk records that existed but failed to decode.
    pub disk_misreads: u64,
    /// Table-store snapshots loaded from [`PlannerConfig::tables_dir`].
    pub snapshot_loads: u64,
    /// Table-store snapshots saved to [`PlannerConfig::tables_dir`].
    pub snapshot_saves: u64,
    /// Cumulative microseconds spent loading table-store snapshots.
    pub snapshot_load_micros: u64,
    /// Cumulative microseconds spent saving table-store snapshots.
    pub snapshot_save_micros: u64,
    /// Interned states adopted from loaded snapshots (warm-reused states).
    pub warm_states: u64,
}

/// Per-request response telemetry around the served plan.
#[derive(Debug, Clone)]
pub struct PlanResponse {
    /// The plan.
    pub plan: Arc<Plan>,
    /// Where it came from.
    pub source: PlanSource,
    /// The request's content address.
    pub fingerprint: Fingerprint,
    /// Admission-queue depth observed while handling this request.
    pub queue_depth: usize,
    /// End-to-end latency of [`Planner::plan`] for this request.
    pub latency: Duration,
}

/// The single-flight rendezvous: every request for one in-flight
/// fingerprint waits on the same slot.
struct PendingPlan {
    slot: Mutex<Option<Result<Arc<Plan>, ServiceError>>>,
    done: Condvar,
}

impl PendingPlan {
    fn new() -> Self {
        PendingPlan {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn wait(&self) -> Result<Arc<Plan>, ServiceError> {
        let mut slot = self.slot.lock().expect("pending slot poisoned");
        while slot.is_none() {
            slot = self.done.wait(slot).expect("pending slot poisoned");
        }
        slot.clone().expect("checked above")
    }

    fn complete(&self, result: Result<Arc<Plan>, ServiceError>) {
        *self.slot.lock().expect("pending slot poisoned") = Some(result);
        self.done.notify_all();
    }
}

/// One admitted, not-yet-planned request.
struct Queued {
    fingerprint: Fingerprint,
    request: PlanRequest,
    pending: Arc<PendingPlan>,
}

/// Per-tenant FIFOs drained round-robin: within a tenant, strict arrival
/// order; across tenants, one request per turn, so a tenant flooding the
/// queue cannot starve anyone. Deterministic given the arrival order.
struct AdmissionQueue {
    tenants: Vec<(String, VecDeque<Queued>)>,
    /// Index of the tenant whose turn is next.
    cursor: usize,
    len: usize,
}

impl AdmissionQueue {
    fn new() -> Self {
        AdmissionQueue {
            tenants: Vec::new(),
            cursor: 0,
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn push(&mut self, tenant: &str, item: Queued) {
        match self.tenants.iter_mut().find(|(name, _)| name == tenant) {
            Some((_, fifo)) => fifo.push_back(item),
            None => {
                let mut fifo = VecDeque::new();
                fifo.push_back(item);
                self.tenants.push((tenant.to_string(), fifo));
            }
        }
        self.len += 1;
    }

    /// Pops up to `max` requests in fair order and drops tenants that went
    /// empty (rotating the cursor so the round-robin resumes after the last
    /// tenant served).
    fn drain(&mut self, max: usize) -> Vec<Queued> {
        let mut out = Vec::new();
        while out.len() < max && self.len > 0 {
            let index = self.cursor % self.tenants.len();
            if let Some(item) = self.tenants[index].1.pop_front() {
                out.push(item);
                self.len -= 1;
            }
            self.cursor = (index + 1) % self.tenants.len();
        }
        // Compact away empty tenants while preserving the cursor's position
        // in the rotation.
        let next_tenant = self
            .tenants
            .get(self.cursor % self.tenants.len().max(1))
            .map(|(name, _)| name.clone());
        self.tenants.retain(|(_, fifo)| !fifo.is_empty());
        self.cursor = next_tenant
            .and_then(|name| self.tenants.iter().position(|(n, _)| *n == name))
            .unwrap_or(0);
        out
    }

    /// Drains everything in fair order (shutdown path).
    fn drain_all(&mut self) -> Vec<Queued> {
        self.drain(usize::MAX)
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    warm_hits: AtomicU64,
    disk_hits: AtomicU64,
    coalesced: AtomicU64,
    syntheses: AtomicU64,
    batches: AtomicU64,
    rejected: AtomicU64,
    store_errors: AtomicU64,
    peak_queue_depth: AtomicU64,
    snapshot_loads: AtomicU64,
    snapshot_saves: AtomicU64,
    snapshot_load_micros: AtomicU64,
    snapshot_save_micros: AtomicU64,
    warm_states: AtomicU64,
}

/// Per-table-key warm state of a planner with a cross-run table store: one
/// [`SharedTables`] + [`MemoBank`] pair per key, snapshot-loaded on first
/// use and saved after every batch that touched the key. Keying by table
/// key keeps each snapshot pure (only that key's states), which is what the
/// all-or-nothing preload contract requires.
struct TableStoreState {
    store: TableStore,
    by_key: Mutex<FxHashMap<u128, WarmPair>>,
}

/// The shared interner/apply tables and memo bank warming one table key.
type WarmPair = (Arc<SharedTables>, Arc<MemoBank>);

struct PlannerInner {
    config: PlannerConfig,
    store: Mutex<PlanStore>,
    pending: Mutex<FxHashMap<u128, Arc<PendingPlan>>>,
    queue: Mutex<AdmissionQueue>,
    queue_wake: Condvar,
    stats: Counters,
    shutdown: AtomicBool,
    tables: Option<Arc<SharedTables>>,
    table_store: Option<TableStoreState>,
    observer: Option<Arc<dyn RunObserver + Send + Sync>>,
}

/// The planner service: content-addressed caching, single-flight dedup,
/// and fair batched synthesis behind one synchronous [`plan`](Planner::plan)
/// call.
///
/// # Examples
///
/// ```
/// use p2_service::{Planner, PlannerConfig, PlanRequest};
/// use p2_topology::presets;
///
/// let planner = Planner::new(PlannerConfig::default()).unwrap();
/// let request = PlanRequest::new(presets::a100_system(2), vec![8, 4], vec![0])
///     .with_bytes_per_device(1.0e9)
///     .with_repeats(2);
/// let miss = planner.plan("docs", request.clone()).unwrap();
/// let hit = planner.plan("docs", request).unwrap();
/// assert_eq!(hit.plan, miss.plan);
/// assert_eq!(planner.stats().warm_hits, 1);
/// ```
pub struct Planner {
    inner: Arc<PlannerInner>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Planner {
    /// Starts a planner (and its worker thread) with `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Store`] if the persistent store directory
    /// cannot be created.
    pub fn new(config: PlannerConfig) -> Result<Planner, ServiceError> {
        Planner::start(config, None)
    }

    /// [`Planner::new`] with a [`RunObserver`] attached to every synthesis
    /// the planner runs — the hook the cache-bypass tests count
    /// placements through.
    pub fn with_observer(
        config: PlannerConfig,
        observer: Arc<dyn RunObserver + Send + Sync>,
    ) -> Result<Planner, ServiceError> {
        Planner::start(config, Some(observer))
    }

    fn start(
        config: PlannerConfig,
        observer: Option<Arc<dyn RunObserver + Send + Sync>>,
    ) -> Result<Planner, ServiceError> {
        let store = match &config.store_dir {
            Some(dir) => PlanStore::persistent(config.lru_capacity, dir)?,
            None => PlanStore::in_memory(config.lru_capacity),
        }
        .with_max_bytes(config.store_max_bytes)
        .with_ttl(config.store_ttl);
        // A cross-run table store supersedes the in-process warm interner:
        // its per-key tables *are* the warm tables, persisted on top.
        let table_store = config.tables_dir.as_ref().map(|dir| TableStoreState {
            store: TableStore::new(dir),
            by_key: Mutex::new(FxHashMap::default()),
        });
        let tables =
            (config.warm_tables && table_store.is_none()).then(|| Arc::new(SharedTables::new()));
        let inner = Arc::new(PlannerInner {
            config,
            store: Mutex::new(store),
            pending: Mutex::new(FxHashMap::default()),
            queue: Mutex::new(AdmissionQueue::new()),
            queue_wake: Condvar::new(),
            stats: Counters::default(),
            shutdown: AtomicBool::new(false),
            tables,
            table_store,
            observer,
        });
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("p2-planner".to_string())
            .spawn(move || worker_loop(&worker_inner))
            .map_err(|e| ServiceError::Store(format!("spawn worker: {e}")))?;
        Ok(Planner {
            inner,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// Plans one request for `tenant`, blocking until the plan is available
    /// (immediately on cache hits).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] if the admission queue is full,
    /// [`ServiceError::ShuttingDown`] during shutdown, or the pipeline /
    /// store error of a failed synthesis (shared verbatim by every
    /// coalesced waiter).
    pub fn plan(&self, tenant: &str, request: PlanRequest) -> Result<PlanResponse, ServiceError> {
        let start = Instant::now();
        let inner = &*self.inner;
        inner.stats.requests.fetch_add(1, Ordering::Relaxed);
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        let fingerprint = request.fingerprint();

        let hit = |plan: Arc<Plan>, source: PlanSource| {
            match source {
                PlanSource::Warm => inner.stats.warm_hits.fetch_add(1, Ordering::Relaxed),
                _ => inner.stats.disk_hits.fetch_add(1, Ordering::Relaxed),
            };
            PlanResponse {
                plan,
                source,
                fingerprint,
                queue_depth: self.queue_depth(),
                latency: start.elapsed(),
            }
        };

        // Fast path: cache probe, no pending/queue locks touched.
        {
            let mut store = inner.store.lock().expect("store poisoned");
            if let Some((plan, source)) = store.get(fingerprint) {
                drop(store);
                return Ok(hit(plan, source));
            }
        }

        // Slow path: coalesce onto an in-flight synthesis or admit a new
        // one. Lock order: pending → store → queue.
        let pending = {
            let mut pending_map = inner.pending.lock().expect("pending poisoned");
            if let Some(pending) = pending_map.get(&fingerprint.0) {
                inner.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                Arc::clone(pending)
            } else {
                // Re-probe under the pending lock: the synthesis may have
                // completed (and left the pending map) between the two
                // critical sections above.
                let mut store = inner.store.lock().expect("store poisoned");
                if let Some((plan, source)) = store.get(fingerprint) {
                    drop(store);
                    drop(pending_map);
                    return Ok(hit(plan, source));
                }
                drop(store);
                let mut queue = inner.queue.lock().expect("queue poisoned");
                if queue.len() >= inner.config.queue_capacity {
                    inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(ServiceError::Overloaded {
                        queue_depth: queue.len(),
                        capacity: inner.config.queue_capacity,
                    });
                }
                let pending = Arc::new(PendingPlan::new());
                pending_map.insert(fingerprint.0, Arc::clone(&pending));
                queue.push(
                    tenant,
                    Queued {
                        fingerprint,
                        request,
                        pending: Arc::clone(&pending),
                    },
                );
                inner
                    .stats
                    .peak_queue_depth
                    .fetch_max(queue.len() as u64, Ordering::Relaxed);
                inner.queue_wake.notify_one();
                drop(queue);
                drop(pending_map);
                let plan = pending.wait()?;
                return Ok(PlanResponse {
                    plan,
                    source: PlanSource::Synthesized,
                    fingerprint,
                    queue_depth: self.queue_depth(),
                    latency: start.elapsed(),
                });
            }
        };
        let plan = pending.wait()?;
        Ok(PlanResponse {
            plan,
            source: PlanSource::Coalesced,
            fingerprint,
            queue_depth: self.queue_depth(),
            latency: start.elapsed(),
        })
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().expect("queue poisoned").len()
    }

    /// A snapshot of the telemetry counters.
    pub fn stats(&self) -> PlannerStats {
        let inner = &*self.inner;
        let store = inner.store.lock().expect("store poisoned");
        PlannerStats {
            requests: inner.stats.requests.load(Ordering::Relaxed),
            warm_hits: inner.stats.warm_hits.load(Ordering::Relaxed),
            disk_hits: inner.stats.disk_hits.load(Ordering::Relaxed),
            coalesced: inner.stats.coalesced.load(Ordering::Relaxed),
            syntheses: inner.stats.syntheses.load(Ordering::Relaxed),
            batches: inner.stats.batches.load(Ordering::Relaxed),
            rejected: inner.stats.rejected.load(Ordering::Relaxed),
            store_errors: inner.stats.store_errors.load(Ordering::Relaxed),
            queue_depth: self.queue_depth(),
            peak_queue_depth: inner.stats.peak_queue_depth.load(Ordering::Relaxed),
            lru_len: store.len(),
            evictions: store.evictions(),
            size_evictions: store.size_evictions(),
            ttl_evictions: store.ttl_evictions(),
            resident_bytes: store.resident_bytes(),
            disk_misreads: store.disk_misreads(),
            snapshot_loads: inner.stats.snapshot_loads.load(Ordering::Relaxed),
            snapshot_saves: inner.stats.snapshot_saves.load(Ordering::Relaxed),
            snapshot_load_micros: inner.stats.snapshot_load_micros.load(Ordering::Relaxed),
            snapshot_save_micros: inner.stats.snapshot_save_micros.load(Ordering::Relaxed),
            warm_states: inner.stats.warm_states.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting requests, fails everything still queued with
    /// [`ServiceError::ShuttingDown`], and joins the worker after any
    /// in-flight batch finishes (its waiters still get their plans).
    /// Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.queue_wake.notify_all();
        if let Some(handle) = self.worker.lock().expect("worker poisoned").take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Planner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Arc<PlannerInner>) {
    loop {
        let batch = {
            let mut queue = inner.queue.lock().expect("queue poisoned");
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    let abandoned = queue.drain_all();
                    drop(queue);
                    for queued in &abandoned {
                        finish(inner, queued, Err(ServiceError::ShuttingDown));
                    }
                    return;
                }
                if queue.len() > 0 {
                    break queue.drain(inner.config.max_batch);
                }
                queue = inner.queue_wake.wait(queue).expect("queue poisoned");
            }
        };

        // Build sessions; a request that fails validation fails alone.
        let mut jobs: Vec<(Queued, P2)> = Vec::with_capacity(batch.len());
        for queued in batch {
            match queued.request.session() {
                Ok(session) => {
                    let session = if let Some(table_store) = &inner.table_store {
                        warm_session(inner, table_store, session)
                    } else if let Some(tables) = &inner.tables {
                        session.with_shared_tables(Arc::clone(tables))
                    } else {
                        session
                    };
                    jobs.push((queued, session));
                }
                Err(error) => finish(inner, &queued, Err(error.into())),
            }
        }
        if jobs.is_empty() {
            continue;
        }

        inner.stats.batches.fetch_add(1, Ordering::Relaxed);
        let sessions: Vec<P2> = jobs.iter().map(|(_, session)| session.clone()).collect();
        let options = BatchOptions {
            steal_seed: inner.config.steal_seed,
            ..BatchOptions::with_threads(inner.config.threads)
        };
        let observer: &dyn RunObserver = match &inner.observer {
            Some(observer) => &**observer,
            None => &(),
        };
        match run_batch(&sessions, &options, observer) {
            Ok(outcome) => {
                inner
                    .stats
                    .syntheses
                    .fetch_add(jobs.len() as u64, Ordering::Relaxed);
                for ((queued, _), result) in jobs.iter().zip(outcome.results) {
                    let plan = Arc::new(Plan::from_result(
                        queued.fingerprint,
                        &result,
                        queued.request.top_k,
                    ));
                    finish(inner, queued, Ok(plan));
                }
                save_touched_snapshots(inner, &jobs);
            }
            Err(error) => {
                for (queued, _) in &jobs {
                    finish(inner, queued, Err(error.clone().into()));
                }
            }
        }
    }
}

/// Attaches the cross-run warm state for the session's table key: the key's
/// shared tables and memo bank, snapshot-loaded from disk the first time
/// the key is seen. Supplying both externally also deactivates the
/// session's own per-run store, so the planner is the sole persister.
fn warm_session(inner: &PlannerInner, state: &TableStoreState, session: P2) -> P2 {
    let key = session.config().table_key();
    let mut by_key = state.by_key.lock().expect("table store poisoned");
    let (tables, bank) = by_key.entry(key.0).or_insert_with(|| {
        let tables = Arc::new(SharedTables::new());
        let bank = Arc::new(MemoBank::new());
        let started = Instant::now();
        if let Some(snapshot) = state.store.load(key) {
            let mut stats = TableStoreStats::default();
            snapshot.install(Some(&tables), &bank, &mut stats);
            inner.stats.snapshot_loads.fetch_add(1, Ordering::Relaxed);
            inner
                .stats
                .warm_states
                .fetch_add(stats.warm_states as u64, Ordering::Relaxed);
        }
        inner
            .stats
            .snapshot_load_micros
            .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        (tables, bank)
    });
    session
        .with_shared_tables(Arc::clone(tables))
        .with_shared_memo(Arc::clone(bank))
}

/// Saves one snapshot per table key the finished batch touched. Failed or
/// empty saves are skipped silently (the tables stay warm in memory); the
/// batch's plans are already published either way.
fn save_touched_snapshots(inner: &PlannerInner, jobs: &[(Queued, P2)]) {
    let Some(table_store) = &inner.table_store else {
        return;
    };
    let mut keys: Vec<Fingerprint> = jobs
        .iter()
        .map(|(_, session)| session.config().table_key())
        .collect();
    keys.sort_by_key(|key| key.0);
    keys.dedup();
    let by_key = table_store.by_key.lock().expect("table store poisoned");
    for key in keys {
        let Some((tables, bank)) = by_key.get(&key.0) else {
            continue;
        };
        let started = Instant::now();
        let snapshot = TableSnapshot::capture(Some(tables), bank);
        if !snapshot.is_empty() && table_store.store.save(key, &snapshot).is_ok() {
            inner.stats.snapshot_saves.fetch_add(1, Ordering::Relaxed);
        }
        inner
            .stats
            .snapshot_save_micros
            .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
    }
}

/// Publishes a finished request: successful plans go into the store, the
/// fingerprint leaves the single-flight map, and every waiter wakes with
/// the (cloned) outcome. A store write failure is counted but does not fail
/// the request — the plan itself is valid.
fn finish(inner: &PlannerInner, queued: &Queued, result: Result<Arc<Plan>, ServiceError>) {
    {
        // Lock order: pending → store.
        let mut pending_map = inner.pending.lock().expect("pending poisoned");
        if let Ok(plan) = &result {
            let mut store = inner.store.lock().expect("store poisoned");
            if store.insert(Arc::clone(plan)).is_err() {
                inner.stats.store_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        pending_map.remove(&queued.fingerprint.0);
    }
    queued.pending.complete(result);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queued(tag: &str) -> Queued {
        Queued {
            fingerprint: Fingerprint::of_bytes(tag.as_bytes()),
            request: PlanRequest::new(p2_topology::presets::a100_system(2), vec![8, 4], vec![0]),
            pending: Arc::new(PendingPlan::new()),
        }
    }

    fn drain_tags(queue: &mut AdmissionQueue, max: usize) -> Vec<String> {
        queue
            .drain(max)
            .iter()
            .map(|q| q.fingerprint.to_string())
            .collect()
    }

    #[test]
    fn table_store_snapshots_survive_planner_restarts() {
        let dir = std::env::temp_dir().join(format!(
            "p2-planner-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = PlannerConfig {
            threads: 2,
            tables_dir: Some(dir.clone()),
            ..PlannerConfig::default()
        };
        let request = || {
            PlanRequest::new(p2_topology::presets::a100_system(2), vec![8, 4], vec![0])
                .with_bytes_per_device(1.0e9)
                .with_repeats(2)
        };
        let cold_planner = Planner::new(config.clone()).unwrap();
        let cold = cold_planner.plan("restart", request()).unwrap();
        // Joins the worker: the post-batch snapshot save has finished and
        // the counters are quiescent.
        cold_planner.shutdown();
        let cold_stats = cold_planner.stats();
        assert_eq!(cold_stats.snapshot_loads, 0);
        assert_eq!(cold_stats.snapshot_saves, 1);
        assert_eq!(cold_stats.warm_states, 0);
        drop(cold_planner);
        // A fresh planner over the same directory warm-starts from disk and
        // serves a bit-identical plan.
        let warm_planner = Planner::new(config).unwrap();
        let warm = warm_planner.plan("restart", request()).unwrap();
        warm_planner.shutdown();
        let warm_stats = warm_planner.stats();
        assert_eq!(warm_stats.snapshot_loads, 1);
        assert!(warm_stats.warm_states > 0);
        // Bit-identical modulo wall-clock (`synthesis_micros`).
        assert_eq!(warm.plan.fingerprint, cold.plan.fingerprint);
        assert_eq!(warm.plan.entries, cold.plan.entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        let mut queue = AdmissionQueue::new();
        for tag in ["a1", "a2", "a3", "a4"] {
            queue.push("alice", queued(tag));
        }
        queue.push("bob", queued("b1"));
        queue.push("carol", queued("c1"));
        let a1 = Fingerprint::of_bytes(b"a1").to_string();
        let a2 = Fingerprint::of_bytes(b"a2").to_string();
        let b1 = Fingerprint::of_bytes(b"b1").to_string();
        let c1 = Fingerprint::of_bytes(b"c1").to_string();
        // One per tenant per turn: alice cannot monopolize the batch.
        assert_eq!(drain_tags(&mut queue, 4), vec![a1, b1, c1, a2]);
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn rotation_resumes_across_drains() {
        let mut queue = AdmissionQueue::new();
        queue.push("alice", queued("a1"));
        queue.push("alice", queued("a2"));
        queue.push("bob", queued("b1"));
        let a1 = Fingerprint::of_bytes(b"a1").to_string();
        let a2 = Fingerprint::of_bytes(b"a2").to_string();
        let b1 = Fingerprint::of_bytes(b"b1").to_string();
        assert_eq!(drain_tags(&mut queue, 1), vec![a1]);
        // Bob's turn persists across the drain boundary.
        assert_eq!(drain_tags(&mut queue, 2), vec![b1, a2]);
        assert_eq!(queue.len(), 0);
    }

    #[test]
    fn within_a_tenant_order_is_fifo() {
        let mut queue = AdmissionQueue::new();
        for tag in ["x1", "x2", "x3"] {
            queue.push("solo", queued(tag));
        }
        let expected: Vec<String> = ["x1", "x2", "x3"]
            .iter()
            .map(|t| Fingerprint::of_bytes(t.as_bytes()).to_string())
            .collect();
        assert_eq!(drain_tags(&mut queue, 8), expected);
    }
}
