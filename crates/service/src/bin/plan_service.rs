//! The planner service binary: a line-delimited JSON TCP server over
//! [`p2_service::Planner`], a matching client, and an end-to-end smoke mode.
//!
//! ```text
//! plan_service serve  --addr 127.0.0.1:7973 [--store DIR] [--threads N]
//!                     [--queue-capacity N] [--max-batch N] [--lru N]
//!                     [--tables-dir DIR] [--store-max-bytes N]
//!                     [--store-ttl-secs N]
//! plan_service client --addr 127.0.0.1:7973 [--retry N] [--tenant T]
//!                     (--op ping|stats|shutdown | plan flags)
//!                     [--repeat N] [--concurrent N] [--expect-source S]
//! plan_service smoke  [--threads N]
//! ```
//!
//! Plan flags: `--system a100|v100|v100-pcie|figure2a|rack`, `--nodes N`,
//! `--racks N`, `--nodes-per-rack N`, `--gpus N`, `--oversubscription R`,
//! `--axes 8,4`, `--reduction 0`, `--algo ring|tree`,
//! `--mode measure|predict|shortlist`, `--shortlist N`, `--cost-model K`,
//! `--bytes B`, `--noise F`, `--seed N`, `--repeats N`, `--keep-top N`,
//! `--max-size N`, `--top-k N`.
//!
//! `serve` prints `listening on <addr>` once ready. `client --expect-source`
//! exits nonzero if the response's `source` differs — the CI smoke steps are
//! built from exactly that. `smoke` spins up its own server on an ephemeral
//! port (fresh temp store), drives the full hit/miss/coalesce/restart
//! scenario over real TCP, and exits nonzero on any violation.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use p2_service::json::Json;
use p2_service::wire::{
    encode_error, encode_plan_response, encode_stats, parse_request, WireRequest,
};
use p2_service::{Planner, PlannerConfig};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_usize(args: &[String], flag: &str) -> Option<usize> {
    flag_value(args, flag).map(|v| {
        v.parse::<usize>()
            .unwrap_or_else(|_| die(&format!("{flag} expects an integer, got `{v}`")))
    })
}

fn die(msg: &str) -> ! {
    eprintln!("plan_service: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        Some("smoke") => smoke(&args[1..]),
        _ => die("usage: plan_service serve|client|smoke [flags] (see --help in the crate docs)"),
    }
}

// ---------------------------------------------------------------- serve --

fn planner_config(args: &[String]) -> PlannerConfig {
    let mut config = PlannerConfig::default();
    if let Some(threads) = flag_usize(args, "--threads") {
        config.threads = threads;
    }
    if let Some(capacity) = flag_usize(args, "--queue-capacity") {
        config.queue_capacity = capacity;
    }
    if let Some(batch) = flag_usize(args, "--max-batch") {
        config.max_batch = batch;
    }
    if let Some(lru) = flag_usize(args, "--lru") {
        config.lru_capacity = lru;
    }
    config.store_dir = flag_value(args, "--store").map(PathBuf::from);
    config.tables_dir = flag_value(args, "--tables-dir").map(PathBuf::from);
    if let Some(max_bytes) = flag_usize(args, "--store-max-bytes") {
        config.store_max_bytes = Some(max_bytes as u64);
    }
    if let Some(ttl_secs) = flag_usize(args, "--store-ttl-secs") {
        config.store_ttl = Some(Duration::from_secs(ttl_secs as u64));
    }
    config
}

fn serve(args: &[String]) {
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7973".to_string());
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| die(&format!("bind {addr}: {e}")));
    let config = planner_config(args);
    if let Some(dir) = &config.tables_dir {
        println!("table store at {}", dir.display());
    }
    let planner = Planner::new(config).unwrap_or_else(|e| die(&format!("start planner: {e}")));
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    println!("listening on {local}");
    let _ = std::io::stdout().flush();
    run_server(listener, Arc::new(planner));
}

/// Accept loop; returns once a `shutdown` op has been served. The planner
/// drains on drop.
fn run_server(listener: TcpListener, planner: Arc<Planner>) {
    let stop = Arc::new(AtomicBool::new(false));
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    for connection in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = connection else { continue };
        let planner = Arc::clone(&planner);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || handle_connection(stream, &planner, &stop, local));
    }
    planner.shutdown();
}

fn handle_connection(stream: TcpStream, planner: &Planner, stop: &AtomicBool, local: SocketAddr) {
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    // Snapshot counters last reported by this connection, so serve mode logs
    // every table-store load/save outcome exactly once.
    let mut snapshots_seen = (0u64, 0u64);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_request(&line) {
            Err(error) => encode_error(&error),
            Ok(WireRequest::Ping) => r#"{"ok":true,"pong":true}"#.to_string(),
            Ok(WireRequest::Stats) => encode_stats(&planner.stats()),
            Ok(WireRequest::Shutdown) => {
                let _ = writeln!(writer, r#"{{"ok":true,"shutting_down":true}}"#);
                stop.store(true, Ordering::Release);
                // Wake the accept loop so it observes the stop flag.
                let _ = TcpStream::connect(local);
                return;
            }
            Ok(WireRequest::Plan { tenant, request }) => {
                let reply = match planner.plan(&tenant, *request) {
                    Ok(response) => encode_plan_response(&response),
                    Err(error) => encode_error(&error),
                };
                log_snapshot_activity(planner, &mut snapshots_seen);
                reply
            }
        };
        if writeln!(writer, "{reply}").is_err() {
            return;
        }
    }
}

/// Logs table-store snapshot loads/saves that happened since this
/// connection last looked (a save lands after the plan is published, so it
/// may be reported by a later request's log line).
fn log_snapshot_activity(planner: &Planner, seen: &mut (u64, u64)) {
    let stats = planner.stats();
    if stats.snapshot_loads > seen.0 {
        println!(
            "table store: loaded {} snapshot(s), {} warm state(s), {}us total",
            stats.snapshot_loads, stats.warm_states, stats.snapshot_load_micros
        );
    }
    if stats.snapshot_saves > seen.1 {
        println!(
            "table store: saved {} snapshot(s), {}us total",
            stats.snapshot_saves, stats.snapshot_save_micros
        );
    }
    *seen = (stats.snapshot_loads, stats.snapshot_saves);
}

// ---------------------------------------------------------------- client --

fn connect_with_retry(addr: &str, attempts: usize) -> TcpStream {
    let mut last_error = None;
    for _ in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => return stream,
            Err(e) => {
                last_error = Some(e);
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    die(&format!(
        "connect {addr}: {}",
        last_error.expect("at least one attempt")
    ))
}

fn request_line_from_flags(args: &[String]) -> String {
    if let Some(raw) = flag_value(args, "--json") {
        return raw;
    }
    if let Some(op) = flag_value(args, "--op") {
        return format!(r#"{{"op":"{op}"}}"#);
    }
    // Assemble a plan op from the individual flags.
    let mut fields = vec![
        r#""op":"plan""#.to_string(),
        format!(
            r#""tenant":"{}""#,
            flag_value(args, "--tenant").unwrap_or_else(|| "cli".to_string())
        ),
        format!(
            r#""system":"{}""#,
            flag_value(args, "--system").unwrap_or_else(|| "a100".to_string())
        ),
    ];
    let axes = flag_value(args, "--axes").unwrap_or_else(|| "8,4".to_string());
    fields.push(format!(r#""axes":[{axes}]"#));
    let reduction = flag_value(args, "--reduction").unwrap_or_else(|| "0".to_string());
    fields.push(format!(r#""reduction":[{reduction}]"#));
    for (flag, key) in [
        ("--nodes", "nodes"),
        ("--racks", "racks"),
        ("--nodes-per-rack", "nodes_per_rack"),
        ("--gpus", "gpus"),
        ("--shortlist", "shortlist"),
        ("--seed", "seed"),
        ("--repeats", "repeats"),
        ("--keep-top", "keep_top"),
        ("--max-size", "max_program_size"),
        ("--top-k", "top_k"),
    ] {
        if let Some(value) = flag_value(args, flag) {
            fields.push(format!(r#""{key}":{value}"#));
        }
    }
    for (flag, key) in [
        ("--oversubscription", "oversubscription"),
        ("--bytes", "bytes_per_device"),
        ("--noise", "noise"),
        ("--prune-slack", "prune_slack"),
    ] {
        if let Some(value) = flag_value(args, flag) {
            fields.push(format!(r#""{key}":{value}"#));
        }
    }
    for (flag, key) in [
        ("--algo", "algo"),
        ("--mode", "mode"),
        ("--cost-model", "cost_model"),
    ] {
        if let Some(value) = flag_value(args, flag) {
            fields.push(format!(r#""{key}":"{value}""#));
        }
    }
    format!("{{{}}}", fields.join(","))
}

fn send_line(stream: &mut TcpStream, line: &str) -> String {
    writeln!(stream, "{line}").unwrap_or_else(|e| die(&format!("send: {e}")));
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut reply = String::new();
    reader
        .read_line(&mut reply)
        .unwrap_or_else(|e| die(&format!("receive: {e}")));
    reply.trim_end().to_string()
}

fn check_source(reply: &str, expected: &str) -> bool {
    Json::parse(reply)
        .ok()
        .and_then(|json| {
            json.get("source")
                .and_then(|s| s.as_str().map(String::from))
        })
        .is_some_and(|source| source == expected)
}

fn client(args: &[String]) {
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7973".to_string());
    let attempts = flag_usize(args, "--retry").unwrap_or(1);
    let line = request_line_from_flags(args);
    let repeat = flag_usize(args, "--repeat").unwrap_or(1).max(1);
    let concurrent = flag_usize(args, "--concurrent").unwrap_or(1).max(1);
    let expected = flag_value(args, "--expect-source");
    let mut failures = 0usize;

    let mut handle_reply = |reply: String| {
        println!("{reply}");
        if let Some(expected) = &expected {
            if !check_source(&reply, expected) {
                eprintln!("plan_service: expected source `{expected}` in: {reply}");
                failures += 1;
            }
        }
    };

    if concurrent > 1 {
        // One connection per thread, all sending the same line at once —
        // the client side of the dedup smoke test.
        let workers: Vec<_> = (0..concurrent)
            .map(|_| {
                let addr = addr.clone();
                let line = line.clone();
                std::thread::spawn(move || {
                    let mut stream = connect_with_retry(&addr, attempts);
                    send_line(&mut stream, &line)
                })
            })
            .collect();
        let mut panicked = 0usize;
        for worker in workers {
            match worker.join() {
                Ok(reply) => handle_reply(reply),
                Err(_) => panicked += 1,
            }
        }
        failures += panicked;
    } else {
        let mut stream = connect_with_retry(&addr, attempts);
        for _ in 0..repeat {
            handle_reply(send_line(&mut stream, &line));
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

// ----------------------------------------------------------------- smoke --

struct SmokeServer {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<()>,
}

fn spawn_smoke_server(store: &std::path::Path, threads: usize) -> SmokeServer {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap_or_else(|e| die(&format!("bind: {e}")));
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    let config = PlannerConfig {
        threads,
        store_dir: Some(store.to_path_buf()),
        tables_dir: Some(store.join("tables")),
        ..PlannerConfig::default()
    };
    let planner = Planner::new(config).unwrap_or_else(|e| die(&format!("start planner: {e}")));
    let thread = std::thread::spawn(move || run_server(listener, Arc::new(planner)));
    SmokeServer { addr, thread }
}

fn smoke(args: &[String]) {
    let threads = flag_usize(args, "--threads").unwrap_or(0);
    let store = std::env::temp_dir().join(format!("p2-plan-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let mut checks: Vec<(&str, bool)> = Vec::new();
    let plan_a = r#"{"op":"plan","tenant":"smoke","system":"rack","racks":2,"nodes_per_rack":2,"gpus":4,"axes":[4,4],"reduction":[0],"bytes_per_device":1e9,"repeats":2,"keep_top":8}"#;
    let plan_b = r#"{"op":"plan","tenant":"smoke","system":"a100","nodes":2,"axes":[8,4],"reduction":[0],"bytes_per_device":1e9,"repeats":2}"#;
    let plan_c = r#"{"op":"plan","tenant":"other","system":"a100","nodes":2,"axes":[16,2],"reduction":[0],"bytes_per_device":1e9,"repeats":2}"#;

    let server = spawn_smoke_server(&store, threads);
    let addr = server.addr.to_string();
    {
        let mut stream = connect_with_retry(&addr, 50);
        let pong = send_line(&mut stream, r#"{"op":"ping"}"#);
        checks.push(("ping answers", pong.contains("\"pong\":true")));

        let cold = send_line(&mut stream, plan_a);
        checks.push((
            "first request synthesizes",
            check_source(&cold, "synthesized"),
        ));
        let warm = send_line(&mut stream, plan_a);
        checks.push(("repeat request hits warm", check_source(&warm, "warm")));
        checks.push((
            "warm repeat returns identical entries",
            extract_entries(&cold) == extract_entries(&warm) && !extract_entries(&cold).is_empty(),
        ));

        // Concurrent identical requests: exactly one synthesis for plan B.
        let before = stats_field(&mut stream, "syntheses");
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut stream = connect_with_retry(&addr, 10);
                    send_line(&mut stream, plan_b)
                })
            })
            .collect();
        let replies: Vec<String> = workers
            .into_iter()
            .map(|w| w.join().expect("smoke worker panicked"))
            .collect();
        let all_ok = replies.iter().all(|r| {
            Json::parse(r)
                .ok()
                .and_then(|j| j.get("ok").and_then(Json::as_bool))
                == Some(true)
        });
        checks.push(("all concurrent replies ok", all_ok));
        let first = extract_entries(&replies[0]);
        checks.push((
            "concurrent replies identical",
            replies.iter().all(|r| extract_entries(r) == first),
        ));
        let after = stats_field(&mut stream, "syntheses");
        checks.push((
            "concurrent identical requests coalesce to one synthesis",
            after - before == 1,
        ));

        let distinct = send_line(&mut stream, plan_c);
        checks.push((
            "distinct request synthesizes",
            check_source(&distinct, "synthesized"),
        ));

        checks.push((
            "stats surface table-store snapshot saves",
            stats_field(&mut stream, "snapshot_saves") >= 1,
        ));

        let bye = send_line(&mut stream, r#"{"op":"shutdown"}"#);
        checks.push((
            "shutdown acknowledged",
            bye.contains("\"shutting_down\":true"),
        ));
    }
    server.thread.join().expect("server thread panicked");

    // Restart on the same store: the plan must come back from disk.
    let server = spawn_smoke_server(&store, threads);
    let addr = server.addr.to_string();
    {
        let mut stream = connect_with_retry(&addr, 50);
        let disk = send_line(&mut stream, plan_a);
        checks.push((
            "restart serves from the disk store",
            check_source(&disk, "disk"),
        ));
        // Same table key, fresh plan fingerprint: the synthesis itself must
        // warm-start from the restarted server's table-store snapshot.
        let plan_a_resized = plan_a.replace("1e9", "2e9");
        let warmed = send_line(&mut stream, &plan_a_resized);
        checks.push((
            "changed bytes re-synthesizes",
            check_source(&warmed, "synthesized"),
        ));
        checks.push((
            "new synthesis warm-starts from the table snapshot",
            stats_field(&mut stream, "snapshot_loads") >= 1
                && stats_field(&mut stream, "warm_states") > 0,
        ));
        let _ = send_line(&mut stream, r#"{"op":"shutdown"}"#);
    }
    server.thread.join().expect("server thread panicked");
    let _ = std::fs::remove_dir_all(&store);

    let mut failed = 0usize;
    for (name, ok) in &checks {
        println!("{} {name}", if *ok { "PASS" } else { "FAIL" });
        if !*ok {
            failed += 1;
        }
    }
    if failed > 0 {
        eprintln!("plan_service smoke: {failed} check(s) failed");
        std::process::exit(1);
    }
    println!("plan_service smoke: all {} checks passed", checks.len());
}

fn stats_field(stream: &mut TcpStream, key: &str) -> i64 {
    let reply = send_line(stream, r#"{"op":"stats"}"#);
    Json::parse(&reply)
        .ok()
        .and_then(|json| json.get(key).and_then(Json::as_f64))
        .map(|v| v as i64)
        .unwrap_or(-1)
}

fn extract_entries(reply: &str) -> String {
    Json::parse(reply)
        .ok()
        .and_then(|json| json.get("entries").map(|e| e.to_string()))
        .unwrap_or_default()
}
