//! The content-addressed plan store: an in-memory LRU over the hot
//! fingerprints backed by an optional persistent on-disk store, one
//! versioned JSON record per fingerprint.
//!
//! Layout on disk is flat: `<dir>/<32-hex-fingerprint>.json`, written via a
//! temp file + atomic rename so a crash mid-write can never leave a torn
//! record under a valid address. Unreadable, corrupt, or
//! schema-incompatible records are treated as misses (and counted), never
//! as errors — a cache must degrade to "synthesize again", not fail the
//! request.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use p2_hash::Fingerprint;

use crate::error::ServiceError;
use crate::json::Json;
use crate::plan::Plan;

/// Where a plan was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// In-memory LRU hit.
    Warm,
    /// On-disk record (promoted into the LRU on read).
    Disk,
    /// A synthesis this very request triggered.
    Synthesized,
    /// Another in-flight request's synthesis this request coalesced onto.
    Coalesced,
}

impl PlanSource {
    /// The wire token (`"warm"`, `"disk"`, `"synthesized"`, `"coalesced"`).
    pub fn as_str(self) -> &'static str {
        match self {
            PlanSource::Warm => "warm",
            PlanSource::Disk => "disk",
            PlanSource::Synthesized => "synthesized",
            PlanSource::Coalesced => "coalesced",
        }
    }
}

/// LRU + disk store of plans keyed by request fingerprint. Not internally
/// synchronized — the [`Planner`](crate::Planner) wraps it in its own lock.
#[derive(Debug)]
pub struct PlanStore {
    capacity: usize,
    dir: Option<PathBuf>,
    entries: HashMap<u128, (Arc<Plan>, u64)>,
    tick: u64,
    evictions: u64,
    disk_misreads: u64,
}

impl PlanStore {
    /// A purely in-memory store holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn in_memory(capacity: usize) -> PlanStore {
        assert!(capacity > 0, "plan store capacity must be positive");
        PlanStore {
            capacity,
            dir: None,
            entries: HashMap::new(),
            tick: 0,
            evictions: 0,
            disk_misreads: 0,
        }
    }

    /// A store backed by `dir` (created if absent): inserts write through to
    /// disk, LRU misses fall back to disk, and evictions only drop the
    /// in-memory copy.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Store`] if the directory cannot be created.
    pub fn persistent(capacity: usize, dir: impl Into<PathBuf>) -> Result<PlanStore, ServiceError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ServiceError::Store(format!("create {}: {e}", dir.display())))?;
        let mut store = PlanStore::in_memory(capacity);
        store.dir = Some(dir);
        Ok(store)
    }

    /// The on-disk path of a fingerprint's record (`None` for in-memory
    /// stores).
    pub fn path_for(&self, fingerprint: Fingerprint) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|dir| dir.join(format!("{fingerprint}.json")))
    }

    /// Looks up a plan: LRU first, then disk. A disk hit is promoted into
    /// the LRU.
    pub fn get(&mut self, fingerprint: Fingerprint) -> Option<(Arc<Plan>, PlanSource)> {
        self.tick += 1;
        if let Some((plan, stamp)) = self.entries.get_mut(&fingerprint.0) {
            *stamp = self.tick;
            return Some((Arc::clone(plan), PlanSource::Warm));
        }
        let path = self.path_for(fingerprint)?;
        let plan = match self.read_record(&path, fingerprint) {
            Some(plan) => Arc::new(plan),
            None => return None,
        };
        self.insert_memory(Arc::clone(&plan));
        Some((plan, PlanSource::Disk))
    }

    /// Inserts a plan under its own fingerprint, writing through to disk
    /// when persistent.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Store`] if the disk write fails; the
    /// in-memory insert still happened.
    pub fn insert(&mut self, plan: Arc<Plan>) -> Result<(), ServiceError> {
        self.tick += 1;
        let fingerprint = plan.fingerprint;
        self.insert_memory(Arc::clone(&plan));
        if let Some(path) = self.path_for(fingerprint) {
            write_atomically(&path, &format!("{}\n", plan.to_json()))?;
        }
        Ok(())
    }

    fn insert_memory(&mut self, plan: Arc<Plan>) {
        let key = plan.fingerprint.0;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Evict the least-recently-used entry. Linear scan: admission
            // capacities are small (hundreds), and this is off the hit path.
            if let Some(&lru) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k)
            {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        self.entries.insert(key, (plan, self.tick));
    }

    fn read_record(&mut self, path: &Path, fingerprint: Fingerprint) -> Option<Plan> {
        let text = std::fs::read_to_string(path).ok()?;
        let decoded = Json::parse(text.trim_end())
            .ok()
            .and_then(|json| Plan::from_json(&json).ok())
            .filter(|plan| plan.fingerprint == fingerprint);
        if decoded.is_none() {
            // Readable bytes that don't decode to this address: count the
            // misread; the caller re-synthesizes and overwrites.
            self.disk_misreads += 1;
        }
        decoded
    }

    /// Number of plans currently held in memory.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the in-memory layer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Disk records that existed but failed to decode (corrupt, wrong
    /// schema, or wrong address).
    pub fn disk_misreads(&self) -> u64 {
        self.disk_misreads
    }
}

fn write_atomically(path: &Path, contents: &str) -> Result<(), ServiceError> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let fail = |what: &str, e: std::io::Error| {
        ServiceError::Store(format!("{what} {}: {e}", path.display()))
    };
    std::fs::write(&tmp, contents).map_err(|e| fail("write", e))?;
    std::fs::rename(&tmp, path).map_err(|e| fail("rename", e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanStats;

    fn plan(tag: &str) -> Arc<Plan> {
        Arc::new(Plan {
            fingerprint: Fingerprint::of_bytes(tag.as_bytes()),
            label: tag.to_string(),
            entries: vec![],
            stats: PlanStats {
                placements: 1,
                programs: 1,
                programs_retained: 1,
                states_explored: 1,
                synthesis_micros: 1,
            },
        })
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "p2-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut store = PlanStore::in_memory(2);
        let (a, b, c) = (plan("a"), plan("b"), plan("c"));
        store.insert(Arc::clone(&a)).unwrap();
        store.insert(Arc::clone(&b)).unwrap();
        // Touch `a`, making `b` the LRU victim.
        assert!(store.get(a.fingerprint).is_some());
        store.insert(Arc::clone(&c)).unwrap();
        assert_eq!(store.evictions(), 1);
        assert!(store.get(a.fingerprint).is_some());
        assert!(store.get(b.fingerprint).is_none());
        assert!(store.get(c.fingerprint).is_some());
    }

    #[test]
    fn persistent_store_survives_a_reopen_and_evictions() {
        let dir = temp_dir("persist");
        let a = plan("persisted");
        {
            let mut store = PlanStore::persistent(1, &dir).unwrap();
            store.insert(Arc::clone(&a)).unwrap();
            // Evict it from memory; the record stays on disk.
            store.insert(plan("displacer")).unwrap();
            assert_eq!(store.evictions(), 1);
            let (_, source) = store.get(a.fingerprint).unwrap();
            assert_eq!(source, PlanSource::Disk);
        }
        let mut reopened = PlanStore::persistent(4, &dir).unwrap();
        let (loaded, source) = reopened.get(a.fingerprint).unwrap();
        assert_eq!(source, PlanSource::Disk);
        assert_eq!(*loaded, *a);
        // Now warm.
        let (_, source) = reopened.get(a.fingerprint).unwrap();
        assert_eq!(source, PlanSource::Warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_records_read_as_misses() {
        let dir = temp_dir("corrupt");
        let a = plan("will-corrupt");
        let mut store = PlanStore::persistent(2, &dir).unwrap();
        store.insert(Arc::clone(&a)).unwrap();
        let path = store.path_for(a.fingerprint).unwrap();
        std::fs::write(&path, "{not json").unwrap();
        let mut reopened = PlanStore::persistent(2, &dir).unwrap();
        assert!(reopened.get(a.fingerprint).is_none());
        assert_eq!(reopened.disk_misreads(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
