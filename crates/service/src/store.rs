//! The content-addressed plan store: an in-memory LRU over the hot
//! fingerprints backed by an optional persistent on-disk store, one
//! versioned JSON record per fingerprint.
//!
//! Layout on disk is flat: `<dir>/<32-hex-fingerprint>.json`, written via a
//! temp file + atomic rename so a crash mid-write can never leave a torn
//! record under a valid address. Unreadable, corrupt, or
//! schema-incompatible records are treated as misses (and counted), never
//! as errors — a cache must degrade to "synthesize again", not fail the
//! request.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use p2_hash::Fingerprint;

use crate::error::ServiceError;
use crate::json::Json;
use crate::plan::Plan;

/// Where a plan was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// In-memory LRU hit.
    Warm,
    /// On-disk record (promoted into the LRU on read).
    Disk,
    /// A synthesis this very request triggered.
    Synthesized,
    /// Another in-flight request's synthesis this request coalesced onto.
    Coalesced,
}

impl PlanSource {
    /// The wire token (`"warm"`, `"disk"`, `"synthesized"`, `"coalesced"`).
    pub fn as_str(self) -> &'static str {
        match self {
            PlanSource::Warm => "warm",
            PlanSource::Disk => "disk",
            PlanSource::Synthesized => "synthesized",
            PlanSource::Coalesced => "coalesced",
        }
    }
}

/// One resident plan plus the bookkeeping the eviction policies need.
#[derive(Debug)]
struct StoreEntry {
    plan: Arc<Plan>,
    /// Last-touch tick (LRU ordering).
    stamp: u64,
    /// Serialized record size, charged against the byte cap.
    bytes: u64,
    /// Insertion time (TTL expiry). Refreshed on re-insert, not on read.
    inserted: Instant,
}

/// LRU + disk store of plans keyed by request fingerprint, with optional
/// byte-size-cap and TTL eviction layered on top of the count-bounded LRU.
/// Not internally synchronized — the [`Planner`](crate::Planner) wraps it in
/// its own lock.
#[derive(Debug)]
pub struct PlanStore {
    capacity: usize,
    /// Optional cap on the summed serialized size of resident plans.
    max_bytes: Option<u64>,
    /// Optional maximum residency: entries older than this read as misses
    /// and are dropped (disk records are untouched).
    ttl: Option<Duration>,
    dir: Option<PathBuf>,
    entries: HashMap<u128, StoreEntry>,
    resident_bytes: u64,
    tick: u64,
    evictions: u64,
    size_evictions: u64,
    ttl_evictions: u64,
    disk_misreads: u64,
}

impl PlanStore {
    /// A purely in-memory store holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn in_memory(capacity: usize) -> PlanStore {
        assert!(capacity > 0, "plan store capacity must be positive");
        PlanStore {
            capacity,
            max_bytes: None,
            ttl: None,
            dir: None,
            entries: HashMap::new(),
            resident_bytes: 0,
            tick: 0,
            evictions: 0,
            size_evictions: 0,
            ttl_evictions: 0,
            disk_misreads: 0,
        }
    }

    /// Caps the summed serialized size of in-memory plans: inserts evict the
    /// least-recently-used entries until the new total fits. `None` (the
    /// default) disables the cap. Disk records are never size-evicted.
    pub fn with_max_bytes(mut self, max_bytes: Option<u64>) -> PlanStore {
        self.max_bytes = max_bytes;
        self
    }

    /// Sets a time-to-live for in-memory entries: a lookup older than `ttl`
    /// after insertion reads as a miss and drops the entry (a persistent
    /// store then falls through to disk, where the record remains — TTL
    /// bounds *staleness of the hot layer*, e.g. for calibrated-model plans
    /// a caller wants re-checked periodically). `None` disables expiry.
    pub fn with_ttl(mut self, ttl: Option<Duration>) -> PlanStore {
        self.ttl = ttl;
        self
    }

    /// A store backed by `dir` (created if absent): inserts write through to
    /// disk, LRU misses fall back to disk, and evictions only drop the
    /// in-memory copy.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Store`] if the directory cannot be created.
    pub fn persistent(capacity: usize, dir: impl Into<PathBuf>) -> Result<PlanStore, ServiceError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ServiceError::Store(format!("create {}: {e}", dir.display())))?;
        let mut store = PlanStore::in_memory(capacity);
        store.dir = Some(dir);
        Ok(store)
    }

    /// The on-disk path of a fingerprint's record (`None` for in-memory
    /// stores).
    pub fn path_for(&self, fingerprint: Fingerprint) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|dir| dir.join(format!("{fingerprint}.json")))
    }

    /// Looks up a plan: LRU first (expired entries read as misses), then
    /// disk. A disk hit is promoted into the LRU.
    pub fn get(&mut self, fingerprint: Fingerprint) -> Option<(Arc<Plan>, PlanSource)> {
        self.tick += 1;
        self.expire_one(fingerprint.0);
        if let Some(entry) = self.entries.get_mut(&fingerprint.0) {
            entry.stamp = self.tick;
            return Some((Arc::clone(&entry.plan), PlanSource::Warm));
        }
        let path = self.path_for(fingerprint)?;
        let plan = match self.read_record(&path, fingerprint) {
            Some(plan) => Arc::new(plan),
            None => return None,
        };
        self.insert_memory(Arc::clone(&plan));
        Some((plan, PlanSource::Disk))
    }

    /// Inserts a plan under its own fingerprint, writing through to disk
    /// when persistent.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Store`] if the disk write fails; the
    /// in-memory insert still happened.
    pub fn insert(&mut self, plan: Arc<Plan>) -> Result<(), ServiceError> {
        self.tick += 1;
        let fingerprint = plan.fingerprint;
        self.insert_memory(Arc::clone(&plan));
        if let Some(path) = self.path_for(fingerprint) {
            write_atomically(&path, &format!("{}\n", plan.to_json()))?;
        }
        Ok(())
    }

    fn insert_memory(&mut self, plan: Arc<Plan>) {
        let key = plan.fingerprint.0;
        self.sweep_expired();
        let bytes = plan.to_json().to_string().len() as u64;
        if let Some(old) = self.entries.remove(&key) {
            self.resident_bytes -= old.bytes;
        }
        if self.entries.len() >= self.capacity {
            // Evict the least-recently-used entry. Linear scan: admission
            // capacities are small (hundreds), and this is off the hit path.
            if self.evict_lru() {
                self.evictions += 1;
            }
        }
        // The byte cap evicts LRU-first too; an oversized plan still gets
        // resident (dropping the plan just synthesized would defeat the
        // single-flight path), so the cap can be exceeded by one entry.
        if let Some(cap) = self.max_bytes {
            while self.resident_bytes + bytes > cap && self.evict_lru() {
                self.size_evictions += 1;
            }
        }
        self.resident_bytes += bytes;
        self.entries.insert(
            key,
            StoreEntry {
                plan,
                stamp: self.tick,
                bytes,
                inserted: Instant::now(),
            },
        );
    }

    /// Drops the least-recently-used entry; false when the store is empty.
    fn evict_lru(&mut self) -> bool {
        let Some(&lru) = self
            .entries
            .iter()
            .min_by_key(|(_, entry)| entry.stamp)
            .map(|(k, _)| k)
        else {
            return false;
        };
        let entry = self.entries.remove(&lru).expect("lru key just found");
        self.resident_bytes -= entry.bytes;
        true
    }

    /// Drops one entry if it has outlived the TTL.
    fn expire_one(&mut self, key: u128) {
        let Some(ttl) = self.ttl else { return };
        if self
            .entries
            .get(&key)
            .is_some_and(|entry| entry.inserted.elapsed() > ttl)
        {
            let entry = self.entries.remove(&key).expect("entry just probed");
            self.resident_bytes -= entry.bytes;
            self.ttl_evictions += 1;
        }
    }

    /// Drops every entry that has outlived the TTL (run off the hit path).
    fn sweep_expired(&mut self) {
        let Some(ttl) = self.ttl else { return };
        let expired: Vec<u128> = self
            .entries
            .iter()
            .filter(|(_, entry)| entry.inserted.elapsed() > ttl)
            .map(|(&k, _)| k)
            .collect();
        for key in expired {
            let entry = self.entries.remove(&key).expect("expired key just found");
            self.resident_bytes -= entry.bytes;
            self.ttl_evictions += 1;
        }
    }

    fn read_record(&mut self, path: &Path, fingerprint: Fingerprint) -> Option<Plan> {
        let text = std::fs::read_to_string(path).ok()?;
        let decoded = Json::parse(text.trim_end())
            .ok()
            .and_then(|json| Plan::from_json(&json).ok())
            .filter(|plan| plan.fingerprint == fingerprint);
        if decoded.is_none() {
            // Readable bytes that don't decode to this address: count the
            // misread; the caller re-synthesizes and overwrites.
            self.disk_misreads += 1;
        }
        decoded
    }

    /// Number of plans currently held in memory.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the in-memory layer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Summed serialized size of the in-memory entries.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Count-capacity (LRU) evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Byte-cap evictions so far.
    pub fn size_evictions(&self) -> u64 {
        self.size_evictions
    }

    /// TTL expiries so far.
    pub fn ttl_evictions(&self) -> u64 {
        self.ttl_evictions
    }

    /// Disk records that existed but failed to decode (corrupt, wrong
    /// schema, or wrong address).
    pub fn disk_misreads(&self) -> u64 {
        self.disk_misreads
    }
}

fn write_atomically(path: &Path, contents: &str) -> Result<(), ServiceError> {
    p2_json::write_atomically(path, contents)
        .map_err(|e| ServiceError::Store(format!("write {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanStats;

    fn plan(tag: &str) -> Arc<Plan> {
        Arc::new(Plan {
            fingerprint: Fingerprint::of_bytes(tag.as_bytes()),
            label: tag.to_string(),
            entries: vec![],
            stats: PlanStats {
                placements: 1,
                programs: 1,
                programs_retained: 1,
                states_explored: 1,
                synthesis_micros: 1,
            },
        })
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "p2-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut store = PlanStore::in_memory(2);
        let (a, b, c) = (plan("a"), plan("b"), plan("c"));
        store.insert(Arc::clone(&a)).unwrap();
        store.insert(Arc::clone(&b)).unwrap();
        // Touch `a`, making `b` the LRU victim.
        assert!(store.get(a.fingerprint).is_some());
        store.insert(Arc::clone(&c)).unwrap();
        assert_eq!(store.evictions(), 1);
        assert!(store.get(a.fingerprint).is_some());
        assert!(store.get(b.fingerprint).is_none());
        assert!(store.get(c.fingerprint).is_some());
    }

    #[test]
    fn persistent_store_survives_a_reopen_and_evictions() {
        let dir = temp_dir("persist");
        let a = plan("persisted");
        {
            let mut store = PlanStore::persistent(1, &dir).unwrap();
            store.insert(Arc::clone(&a)).unwrap();
            // Evict it from memory; the record stays on disk.
            store.insert(plan("displacer")).unwrap();
            assert_eq!(store.evictions(), 1);
            let (_, source) = store.get(a.fingerprint).unwrap();
            assert_eq!(source, PlanSource::Disk);
        }
        let mut reopened = PlanStore::persistent(4, &dir).unwrap();
        let (loaded, source) = reopened.get(a.fingerprint).unwrap();
        assert_eq!(source, PlanSource::Disk);
        assert_eq!(*loaded, *a);
        // Now warm.
        let (_, source) = reopened.get(a.fingerprint).unwrap();
        assert_eq!(source, PlanSource::Warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_cap_evicts_lru_until_the_new_plan_fits() {
        let (a, b, c) = (plan("a"), plan("b"), plan("c"));
        let one = a.to_json().to_string().len() as u64;
        // Room for two serialized plans but not three (labels are all one
        // byte, so every record has the same size).
        let mut store = PlanStore::in_memory(16).with_max_bytes(Some(2 * one));
        store.insert(Arc::clone(&a)).unwrap();
        store.insert(Arc::clone(&b)).unwrap();
        assert_eq!(store.resident_bytes(), 2 * one);
        // Touch `a`, making `b` the victim of the byte cap.
        assert!(store.get(a.fingerprint).is_some());
        store.insert(Arc::clone(&c)).unwrap();
        assert_eq!(store.size_evictions(), 1);
        assert_eq!(store.evictions(), 0);
        assert!(store.get(b.fingerprint).is_none());
        assert!(store.get(a.fingerprint).is_some());
        assert!(store.get(c.fingerprint).is_some());
        assert_eq!(store.resident_bytes(), 2 * one);
        // An oversized plan is still admitted (cap exceeded by one entry).
        let mut tiny = PlanStore::in_memory(16).with_max_bytes(Some(1));
        tiny.insert(Arc::clone(&a)).unwrap();
        assert!(tiny.get(a.fingerprint).is_some());
    }

    #[test]
    fn ttl_expires_hot_entries_but_not_disk_records() {
        let dir = temp_dir("ttl");
        let a = plan("short-lived");
        let mut store = PlanStore::persistent(4, &dir)
            .unwrap()
            .with_ttl(Some(Duration::ZERO));
        store.insert(Arc::clone(&a)).unwrap();
        // The hot entry has already outlived a zero TTL; the lookup falls
        // through to disk and counts the expiry.
        let (_, source) = store.get(a.fingerprint).unwrap();
        assert_eq!(source, PlanSource::Disk);
        assert!(store.ttl_evictions() >= 1);
        // Purely in-memory, the same lookup is a clean miss.
        let mut memory = PlanStore::in_memory(4).with_ttl(Some(Duration::ZERO));
        memory.insert(Arc::clone(&a)).unwrap();
        assert!(memory.get(a.fingerprint).is_none());
        assert_eq!(memory.resident_bytes(), 0);
        // A generous TTL keeps entries warm.
        let mut lasting = PlanStore::in_memory(4).with_ttl(Some(Duration::from_secs(3600)));
        lasting.insert(Arc::clone(&a)).unwrap();
        let (_, source) = lasting.get(a.fingerprint).unwrap();
        assert_eq!(source, PlanSource::Warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_records_read_as_misses() {
        let dir = temp_dir("corrupt");
        let a = plan("will-corrupt");
        let mut store = PlanStore::persistent(2, &dir).unwrap();
        store.insert(Arc::clone(&a)).unwrap();
        let path = store.path_for(a.fingerprint).unwrap();
        std::fs::write(&path, "{not json").unwrap();
        let mut reopened = PlanStore::persistent(2, &dir).unwrap();
        assert!(reopened.get(a.fingerprint).is_none());
        assert_eq!(reopened.disk_misreads(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
