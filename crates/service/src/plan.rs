//! The unit the service stores and serves: a [`Plan`] — the top-K programs
//! of one planned experiment plus its synthesis statistics — and its
//! versioned JSON record format.
//!
//! Records are persisted under the request fingerprint, so the decode path
//! is strict about identity: floats travel as exact IEEE-754 bit patterns
//! (hex strings — JSON numbers round-trip through decimal and are only kept
//! as a human-readable shadow), and a schema-version mismatch makes a record
//! invisible rather than misread. Bit-exactness is what lets the acceptance
//! tests compare a disk-round-tripped plan against a fresh `P2` run with
//! `==` on the raw bits.

use p2_core::ExperimentResult;
use p2_hash::Fingerprint;

use crate::error::ServiceError;
use crate::json::{Json, JsonObject};

/// Version of the on-disk/wire plan record. Bump on any change to the
/// record's shape *or* to the fingerprint function it is addressed by (see
/// the pinned-digest tests in `p2_hash`).
pub const PLAN_SCHEMA_VERSION: u64 = 1;

/// One retained program of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEntry {
    /// The parallelism matrix the program belongs to.
    pub matrix: String,
    /// The lowered program's stable signature.
    pub signature: String,
    /// The synthesized program rendered in the paper's DSL.
    pub program: String,
    /// Predicted time in seconds (exact bits preserved end to end).
    pub predicted_seconds: f64,
    /// Measured time in seconds (exact bits preserved end to end).
    pub measured_seconds: f64,
}

/// Deterministic synthesis statistics of the planned experiment (wall-clock
/// synthesis time is carried separately — it is the one field that never
/// reproduces).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStats {
    /// Placements evaluated.
    pub placements: usize,
    /// Programs enumerated across all placements.
    pub programs: usize,
    /// Programs retained after bounded retention.
    pub programs_retained: usize,
    /// Synthesis-state expansions across all placements.
    pub states_explored: usize,
    /// Wall-clock synthesis time of the run that produced this plan, in
    /// microseconds. Nondeterministic; excluded from bit-identity checks.
    pub synthesis_micros: u64,
}

/// A stored plan: the top-K programs of one content-addressed experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The request fingerprint this plan answers.
    pub fingerprint: Fingerprint,
    /// The experiment's human-readable label.
    pub label: String,
    /// Top-K programs, best first.
    pub entries: Vec<PlanEntry>,
    /// Synthesis statistics.
    pub stats: PlanStats,
}

impl Plan {
    /// Extracts the top-`top_k` programs of `result`, ranked by measured
    /// time with a fully deterministic tie-break (predicted bits, then
    /// matrix, then signature) so the same result always yields the same
    /// plan bytes.
    pub fn from_result(fingerprint: Fingerprint, result: &ExperimentResult, top_k: usize) -> Plan {
        let mut ranked: Vec<PlanEntry> = result
            .placements
            .iter()
            .flat_map(|placement| {
                let matrix = placement.matrix.to_string();
                placement.programs.iter().map(move |program| PlanEntry {
                    matrix: matrix.clone(),
                    signature: program.signature(),
                    program: program.program.to_string(),
                    predicted_seconds: program.predicted_seconds,
                    measured_seconds: program.measured_seconds,
                })
            })
            .collect();
        ranked.sort_by(|a, b| {
            a.measured_seconds
                .total_cmp(&b.measured_seconds)
                .then_with(|| a.predicted_seconds.total_cmp(&b.predicted_seconds))
                .then_with(|| a.matrix.cmp(&b.matrix))
                .then_with(|| a.signature.cmp(&b.signature))
        });
        ranked.truncate(top_k);
        Plan {
            fingerprint,
            label: result.label.clone(),
            entries: ranked,
            stats: PlanStats {
                placements: result.placements.len(),
                programs: result.total_programs(),
                programs_retained: result.total_programs_retained(),
                states_explored: result.total_states_explored(),
                synthesis_micros: result.synthesis_time.as_micros() as u64,
            },
        }
    }

    /// Renders the versioned record (one line of JSON).
    pub fn to_json(&self) -> Json {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|entry| {
                JsonObject::new()
                    .push("matrix", Json::Str(entry.matrix.clone()))
                    .push("signature", Json::Str(entry.signature.clone()))
                    .push("program", Json::Str(entry.program.clone()))
                    .push(
                        "predicted_bits",
                        Json::Str(format!("0x{:016x}", entry.predicted_seconds.to_bits())),
                    )
                    .push(
                        "measured_bits",
                        Json::Str(format!("0x{:016x}", entry.measured_seconds.to_bits())),
                    )
                    // Human-readable shadows; the decoder ignores them.
                    .push("predicted_seconds", Json::Num(entry.predicted_seconds))
                    .push("measured_seconds", Json::Num(entry.measured_seconds))
                    .build()
            })
            .collect();
        let stats = JsonObject::new()
            .push("placements", Json::Num(self.stats.placements as f64))
            .push("programs", Json::Num(self.stats.programs as f64))
            .push(
                "programs_retained",
                Json::Num(self.stats.programs_retained as f64),
            )
            .push(
                "states_explored",
                Json::Num(self.stats.states_explored as f64),
            )
            .push(
                "synthesis_micros",
                Json::Num(self.stats.synthesis_micros as f64),
            )
            .build();
        JsonObject::new()
            .push("schema", Json::Num(PLAN_SCHEMA_VERSION as f64))
            .push("fingerprint", Json::Str(self.fingerprint.to_string()))
            .push("label", Json::Str(self.label.clone()))
            .push("entries", Json::Arr(entries))
            .push("stats", stats)
            .build()
    }

    /// Decodes a record, refusing unknown schema versions and malformed
    /// fields.
    pub fn from_json(json: &Json) -> Result<Plan, ServiceError> {
        let bad = |what: &str| ServiceError::Store(format!("plan record: {what}"));
        let schema = json
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing schema"))?;
        if schema != PLAN_SCHEMA_VERSION {
            return Err(bad(&format!(
                "schema {schema} != supported {PLAN_SCHEMA_VERSION}"
            )));
        }
        let fingerprint = json
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(Fingerprint::parse_hex)
            .ok_or_else(|| bad("bad fingerprint"))?;
        let label = json
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing label"))?
            .to_string();
        let parse_bits = |entry: &Json, key: &str| -> Result<f64, ServiceError> {
            let text = entry
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| bad(&format!("missing {key}")))?;
            let hex = text
                .strip_prefix("0x")
                .ok_or_else(|| bad(&format!("bad {key}")))?;
            let bits = u64::from_str_radix(hex, 16).map_err(|_| bad(&format!("bad {key}")))?;
            Ok(f64::from_bits(bits))
        };
        let mut entries = Vec::new();
        for entry in json
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing entries"))?
        {
            let text = |key: &str| -> Result<String, ServiceError> {
                Ok(entry
                    .get(key)
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad(&format!("missing entry {key}")))?
                    .to_string())
            };
            entries.push(PlanEntry {
                matrix: text("matrix")?,
                signature: text("signature")?,
                program: text("program")?,
                predicted_seconds: parse_bits(entry, "predicted_bits")?,
                measured_seconds: parse_bits(entry, "measured_bits")?,
            });
        }
        let stats = json.get("stats").ok_or_else(|| bad("missing stats"))?;
        let stat = |key: &str| -> Result<u64, ServiceError> {
            stats
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(&format!("missing stat {key}")))
        };
        Ok(Plan {
            fingerprint,
            label,
            entries,
            stats: PlanStats {
                placements: stat("placements")? as usize,
                programs: stat("programs")? as usize,
                programs_retained: stat("programs_retained")? as usize,
                states_explored: stat("states_explored")? as usize,
                synthesis_micros: stat("synthesis_micros")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Plan {
        Plan {
            fingerprint: Fingerprint::of_bytes(b"sample"),
            label: "a100-2node [8,4] r[0]".to_string(),
            entries: vec![PlanEntry {
                matrix: "[[8,0],[4,0]]".to_string(),
                signature: "rs@0|ag@0".to_string(),
                program: "ReduceScatter(0); AllGather(0)".to_string(),
                predicted_seconds: 1.25e-3,
                measured_seconds: f64::from_bits(0x3f50_6272_a3b1_0000),
            }],
            stats: PlanStats {
                placements: 5,
                programs: 93,
                programs_retained: 93,
                states_explored: 1234,
                synthesis_micros: 45678,
            },
        }
    }

    #[test]
    fn record_round_trips_bit_exactly() {
        let plan = sample();
        let line = plan.to_json().to_string();
        let back = Plan::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, plan);
        assert_eq!(
            back.entries[0].measured_seconds.to_bits(),
            plan.entries[0].measured_seconds.to_bits()
        );
    }

    #[test]
    fn unknown_schema_is_refused() {
        let mut json = sample().to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Num(99.0);
        }
        assert!(matches!(
            Plan::from_json(&json),
            Err(ServiceError::Store(_))
        ));
    }
}
