//! Planner-as-a-service for the P² reproduction.
//!
//! The pipeline crates synthesize and cost collective programs per
//! topology; a real fleet has millions of users hitting a handful of
//! topologies. This crate is the layer that exploits that skew:
//!
//! * [`PlanRequest`] + [`p2_core::canonical`] **fingerprint** each request
//!   into a stable 128-bit content address ([`p2_hash::Fingerprint`]) —
//!   order- and representation-insensitive, sensitive to every
//!   result-relevant knob.
//! * [`PlanStore`] keeps fingerprint → [`Plan`] (top-K programs +
//!   predictions + stats) in an in-memory LRU over a persistent on-disk
//!   store of versioned JSON records, so warm answers survive restarts.
//! * [`Planner`] is the front end: cache probe, **single-flight dedup**
//!   (concurrent identical requests coalesce into one synthesis), a
//!   bounded admission queue with **per-tenant fair scheduling**, and one
//!   shared work-stealing pool running misses in batches through
//!   [`p2_core::run_batch`] — with structured telemetry
//!   ([`PlannerStats`], [`PlanResponse`]) throughout.
//! * The `plan_service` binary serves the whole thing as line-delimited
//!   JSON over TCP ([`wire`]), with a built-in client and an end-to-end
//!   smoke mode.
//!
//! Everything is `std`-only, like the rest of the workspace.
//!
//! # Example
//!
//! ```
//! use p2_service::{Planner, PlannerConfig, PlanRequest};
//! use p2_topology::presets;
//!
//! let planner = Planner::new(PlannerConfig::default()).unwrap();
//! let request = PlanRequest::new(presets::a100_system(2), vec![8, 4], vec![0])
//!     .with_bytes_per_device(1.0e9)
//!     .with_repeats(2);
//! let cold = planner.plan("example", request.clone()).unwrap();
//! let warm = planner.plan("example", request).unwrap();
//! // The repeat is served from the plan store, bit-identically.
//! assert_eq!(warm.plan, cold.plan);
//! ```

#![deny(missing_docs)]

mod error;
/// The JSON value type this crate serializes through — now hosted by
/// [`p2_json`] so the core table store shares it; re-exported here to keep
/// the long-standing `p2_service::json` paths working.
pub mod json {
    pub use p2_json::{Json, JsonObject};
}
mod plan;
mod planner;
mod request;
mod store;
pub mod wire;

pub use error::ServiceError;
pub use p2_hash::Fingerprint;
pub use plan::{Plan, PlanEntry, PlanStats, PLAN_SCHEMA_VERSION};
pub use planner::{PlanResponse, Planner, PlannerConfig, PlannerStats};
pub use request::{PlanRequest, DEFAULT_TOP_K};
pub use store::{PlanSource, PlanStore};
