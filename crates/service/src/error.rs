//! Service-level errors: everything that can go wrong between "a request
//! arrived" and "a plan (or refusal) went back".

use std::fmt;

use p2_core::P2Error;

/// Why a plan request failed. `Clone + PartialEq` so one synthesis failure
/// can fan out to every coalesced waiter and tests can assert on exact
/// variants.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The underlying pipeline rejected or failed the experiment.
    Pipeline(P2Error),
    /// The admission queue was full; the request was refused *before* any
    /// work was queued. Back off and retry.
    Overloaded {
        /// Queue depth observed at refusal.
        queue_depth: usize,
        /// The configured admission capacity.
        capacity: usize,
    },
    /// The planner is shutting down; queued and future requests drain with
    /// this error.
    ShuttingDown,
    /// The persistent store failed (I/O or a corrupt/incompatible record).
    Store(String),
    /// A wire message could not be parsed or validated.
    Protocol(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            ServiceError::Overloaded {
                queue_depth,
                capacity,
            } => write!(
                f,
                "planner overloaded: {queue_depth} queued requests at capacity {capacity}"
            ),
            ServiceError::ShuttingDown => write!(f, "planner is shutting down"),
            ServiceError::Store(msg) => write!(f, "plan store error: {msg}"),
            ServiceError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<P2Error> for ServiceError {
    fn from(error: P2Error) -> Self {
        ServiceError::Pipeline(error)
    }
}
