//! A miniature, dependency-free reimplementation of the slice of the
//! [`criterion`](https://crates.io/crates/criterion) API this workspace's
//! benches use. The real crate cannot be fetched in the offline build
//! environment, so this shim keeps the bench files source-compatible
//! (`[[bench]]` targets declare `harness = false` and `criterion_main!`
//! provides `fn main`).
//!
//! Each benchmark is calibrated with a pilot run, then timed over enough
//! iterations to fill `sample_size` samples of at least a few milliseconds;
//! the mean, minimum and maximum per-iteration times are printed.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock duration of one sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

/// A named collection of benchmarks sharing the driver's configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.criterion.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.criterion.sample_size);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an identifier for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Collects timing samples for one benchmark.
#[derive(Debug, Clone)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Times `f`, discarding its output via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Pilot run: estimate the per-iteration cost to size the samples.
        let pilot_start = Instant::now();
        black_box(f());
        let pilot = pilot_start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (SAMPLE_TARGET.as_nanos() / pilot.as_nanos()).clamp(1, 1_000_000) as usize;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<60} (no samples)");
            return;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let min = self.samples.iter().copied().fold(f64::MAX, f64::min);
        let max = self.samples.iter().copied().fold(f64::MIN, f64::max);
        println!(
            "{label:<60} time: [{} {} {}]",
            format_time(min),
            format_time(mean),
            format_time(max)
        );
    }
}

/// Formats seconds with an auto-selected unit, criterion-style.
fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; accept and
            // ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::new("sum", "1k"), &1000u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn groups_and_ids_format() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        let mut criterion = Criterion::default().sample_size(3);
        sample_bench(&mut criterion);
        criterion.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn time_formatting_selects_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2.0e-3).ends_with(" ms"));
        assert!(format_time(2.0e-6).ends_with(" µs"));
        assert!(format_time(2.0e-9).ends_with(" ns"));
    }
}
