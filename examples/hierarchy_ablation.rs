//! Ablation of the synthesis hierarchy (paper §2.5, §3.4, Theorem 3.2).
//!
//! The paper proves that synthesizing over the reduction-axis parallelism
//! factors (hierarchy (d)) is at least as expressive as the row-based (c),
//! column-based (b) and system (a) hierarchies while searching a much smaller
//! space. This example measures all four on the Figure 2d placement: number of
//! distinct lowered programs found, search-space statistics and synthesis
//! time.
//!
//! Run with `cargo run --release --example hierarchy_ablation`
//! `[-- --cost-model alpha-beta|loggp|calibrated]`.

use std::collections::HashSet;
use std::time::Instant;

use p2::{cost_model_from_args, presets, HierarchyKind, P2Config, ParallelismMatrix, Synthesizer};

fn main() -> Result<(), p2::P2Error> {
    let model_kind = cost_model_from_args();
    // Figure 2d placement on the Figure 2a system, reduction along the
    // parameter-sharding axis.
    let matrix = ParallelismMatrix::new(
        vec![vec![1, 1, 2, 2], vec![1, 2, 1, 2]],
        vec![1, 2, 2, 4],
        vec![4, 4],
    )
    .map_err(p2::P2Error::Placement)?;
    let reduction_axes = vec![1];
    let max_size = 4;
    // The placement lives on the Figure 2a system; the best program of every
    // hierarchy is predicted with the selected cost model.
    let model = P2Config::new(presets::figure2a_system(), vec![4, 4], vec![1])
        .make_cost_model(model_kind)?;

    println!("Synthesis-hierarchy ablation on placement {matrix}, reduction on axis 1, size limit {max_size}");
    println!("(predictions by the {model_kind} cost model, select with --cost-model)");
    println!();
    println!(
        "{:<28} {:>10} {:>12} {:>14} {:>12} {:>14}",
        "hierarchy", "space size", "programs", "instr. tried", "time (ms)", "best pred (s)"
    );

    let mut lowered_sets: Vec<(HierarchyKind, HashSet<String>)> = Vec::new();
    for kind in HierarchyKind::ALL {
        let synthesizer = Synthesizer::new(matrix.clone(), reduction_axes.clone(), kind)
            .map_err(p2::P2Error::Synthesis)?;
        let start = Instant::now();
        let result = synthesizer.synthesize(max_size);
        let elapsed = start.elapsed();
        let mut best_predicted = f64::INFINITY;
        // Canonical form of each lowered program, for cross-hierarchy comparison.
        let lowered: HashSet<String> = result
            .programs
            .iter()
            .map(|p| {
                let lp = synthesizer.lower(p).expect("synthesized programs lower");
                best_predicted = best_predicted.min(model.program_time(&lp));
                canonical(&lp)
            })
            .collect();
        println!(
            "({}) {:<24} {:>10} {:>12} {:>14} {:>12.1} {:>14.4}",
            kind.letter(),
            format!("{kind:?}"),
            synthesizer.context().space_size(),
            result.programs.len(),
            result.stats.instructions_tried,
            elapsed.as_secs_f64() * 1e3,
            best_predicted,
        );
        lowered_sets.push((kind, lowered));
    }
    println!();

    // Empirical check of Theorem 3.2: every distinct lowered program found by
    // (a), (b) or (c) is also found by (d).
    let (_, d_set) = lowered_sets
        .iter()
        .find(|(k, _)| *k == HierarchyKind::ReductionAxes)
        .unwrap();
    for (kind, set) in &lowered_sets {
        if *kind == HierarchyKind::ReductionAxes {
            continue;
        }
        let missing = set.difference(d_set).count();
        println!(
            "hierarchy (d) covers ({}) {kind:?}: {} / {} lowered programs found by (d) as well{}",
            kind.letter(),
            set.len() - missing,
            set.len(),
            if missing == 0 {
                "  [Theorem 3.2 holds]"
            } else {
                "  [UNEXPECTED GAP]"
            }
        );
    }
    Ok(())
}

/// A canonical string for a lowered program: per step, the collective plus the
/// sorted device groups.
fn canonical(program: &p2::LoweredProgram) -> String {
    program
        .steps
        .iter()
        .map(|s| {
            let mut groups: Vec<Vec<usize>> = s
                .groups
                .iter()
                .map(|g| {
                    let mut d = g.devices.clone();
                    d.sort_unstable();
                    d
                })
                .collect();
            groups.sort();
            format!("{}{:?}", s.collective, groups)
        })
        .collect::<Vec<_>>()
        .join("|")
}
