//! ResNet-50 data-parallel training on 4 nodes of 8 V100 GPUs.
//!
//! The paper's introduction reports that P² improved ResNet-50 data-parallel
//! training by 15% on exactly this system by replacing the default gradient
//! AllReduce with a synthesized hierarchical reduction. This example
//! reproduces that scenario on the simulated substrate: one parallelism axis
//! of size 32 (pure data parallelism), reduction over the full axis, and the
//! real ResNet-50 gradient volume (~25.6 M float32 parameters).
//!
//! Run with `cargo run --release --example resnet50_data_parallel`
//! `[-- --cost-model alpha-beta|loggp|calibrated]`.

use p2::{cost_model_from_args, presets, NcclAlgo, P2};

/// ResNet-50 has ~25.56 million parameters; gradients are float32.
const RESNET50_PARAMETERS: f64 = 25_557_032.0;

fn main() -> Result<(), p2::P2Error> {
    let kind = cost_model_from_args();
    let system = presets::v100_system(4);
    let gradient_bytes = RESNET50_PARAMETERS * 4.0;
    println!(
        "ResNet-50 data-parallel gradient reduction on {} ({} GPUs, {:.1} MB of gradients per GPU)",
        system.name(),
        system.num_devices(),
        gradient_bytes / 1.0e6
    );
    println!();

    for algo in NcclAlgo::ALL {
        let result = P2::builder(system.clone())
            .parallelism_axes([32])
            .reduction_axes([0])
            .algo(algo)
            .bytes_per_device(gradient_bytes)
            .repeats(5)
            .cost_model_kind(kind)
            .run()?;
        // Pure data parallelism has a single placement: the hierarchy itself.
        let placement = &result.placements[0];
        let best = placement.best_measured().expect("programs synthesized");
        println!("NCCL {algo}:");
        println!(
            "  default AllReduce       : {:>9.2} ms",
            placement.allreduce_measured * 1e3
        );
        println!(
            "  best synthesized program: {:>9.2} ms  ({})",
            best.measured_seconds * 1e3,
            best.signature()
        );
        let speedup = placement.allreduce_measured / best.measured_seconds;
        println!("  gradient-exchange speedup: {speedup:.2}x");
        // A rough end-to-end estimate in the spirit of the paper's 15% claim:
        // assume communication is ~35% of a data-parallel step at this scale.
        let comm_share = 0.35;
        let step_improvement = 1.0 - (1.0 - comm_share + comm_share / speedup);
        println!(
            "  estimated end-to-end step improvement (communication ~{:.0}% of step): {:.1}%",
            comm_share * 100.0,
            step_improvement * 100.0
        );
        println!();
    }
    Ok(())
}
