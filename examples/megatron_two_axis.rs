//! Choosing a placement for Megatron-style training: parameter sharding plus
//! data parallelism on 4 nodes of 16 A100 GPUs.
//!
//! Transformer training with parameter sharding (Shoeybi et al. 2020) needs
//! reductions along *both* axes: activations/gradients are reduced along the
//! sharding axis inside every layer, and gradients are reduced along the data
//! parallel axis once per step. As the paper's Result 1 discussion points out,
//! the placement must take both reductions into account: the placement that is
//! best for one axis can be catastrophic for the other (Table 3, B1 vs B3).
//!
//! This example sweeps every placement of `[sharding = 16, data = 4]`,
//! evaluates the best synthesized reduction for each axis, and picks the
//! placement minimising a weighted sum of the two.
//!
//! Run with `cargo run --release --example megatron_two_axis`
//! `[-- --cost-model alpha-beta|loggp|calibrated]`.

use p2::{cost_model_from_args, presets, NcclAlgo, P2};

fn main() -> Result<(), p2::P2Error> {
    let kind = cost_model_from_args();
    let system = presets::a100_system(4);
    // Axis 0: tensor/parameter sharding of size 16; axis 1: data parallelism of size 4.
    let axes = vec![16, 4];
    // A transformer layer's activation reduction moves less data than the full
    // gradient exchange; weight the per-step frequencies instead: sharding
    // reductions happen per layer (say 48 layers), data-parallel reduction once.
    let sharding_weight = 48.0;
    let data_weight = 1.0;
    let bytes = 128.0e6; // 128 MB per reduction call

    println!(
        "Megatron-style placement selection on {} ({} GPUs), axes [sharding=16, data=4]",
        system.name(),
        system.num_devices()
    );
    println!();

    let run_axis = |reduction: Vec<usize>| -> Result<p2::ExperimentResult, p2::P2Error> {
        P2::builder(system.clone())
            .parallelism_axes(axes.clone())
            .reduction_axes(reduction)
            .algo(NcclAlgo::Ring)
            .bytes_per_device(bytes)
            .repeats(3)
            .cost_model_kind(kind)
            .run()
    };

    let sharding_results = run_axis(vec![0])?;
    let data_results = run_axis(vec![1])?;

    println!(
        "{:<18} {:>14} {:>14} {:>16}",
        "placement", "shard-axis (s)", "data-axis (s)", "weighted cost (s)"
    );
    let mut best: Option<(String, f64)> = None;
    for (shard_pl, data_pl) in sharding_results
        .placements
        .iter()
        .zip(&data_results.placements)
    {
        assert_eq!(
            shard_pl.matrix, data_pl.matrix,
            "placement order must match"
        );
        let shard_time = shard_pl.optimal_measured();
        let data_time = data_pl.optimal_measured();
        let weighted = sharding_weight * shard_time + data_weight * data_time;
        println!(
            "{:<18} {:>14.4} {:>14.4} {:>16.4}",
            shard_pl.matrix.to_string(),
            shard_time,
            data_time,
            weighted
        );
        if best.as_ref().map(|(_, b)| weighted < *b).unwrap_or(true) {
            best = Some((shard_pl.matrix.to_string(), weighted));
        }
    }
    println!();
    let (matrix, cost) = best.expect("at least one placement");
    println!("Chosen placement: {matrix}  (weighted communication cost {cost:.4}s per step)");
    println!(
        "Note how the chosen placement keeps the frequently-reduced sharding axis inside a node \
         — exactly the structure Megatron-LM commits to by hand, derived here automatically."
    );
    Ok(())
}
