//! Quickstart: the paper's running example (Figures 2 and 3).
//!
//! Synthesizes parallelism placements for the 16-GPU system of Figure 2a with
//! data parallelism of size 4 and 4 parameter shards, then synthesizes and
//! evaluates reduction strategies along the parameter-sharding axis.
//!
//! Run with `cargo run --release --example quickstart`
//! `[-- --cost-model alpha-beta|loggp|calibrated]`.

use p2::{cost_model_from_args, presets, NcclAlgo, P2};

fn main() -> Result<(), p2::P2Error> {
    let kind = cost_model_from_args();
    let system = presets::figure2a_system();
    println!("System: {} ({} GPUs)", system.name(), system.num_devices());
    println!("Hierarchy: {:?}", system.hierarchy().arities());
    println!("Cost model: {kind} (select with --cost-model)");
    println!();

    // Data parallelism of size 4 (axis 0) and 4 parameter shards (axis 1);
    // the reduction of interest runs along the parameter shards.
    let result = P2::builder(system)
        .parallelism_axes([4, 4])
        .reduction_axes([1])
        .algo(NcclAlgo::Ring)
        .bytes_per_device(100.0e6) // 100 MB of gradients per GPU
        .repeats(3)
        .cost_model_kind(kind)
        .run()?;

    println!(
        "{} parallelism placements synthesized (Figure 2 shows three of them):",
        result.placements.len()
    );
    for placement in &result.placements {
        println!(
            "  {:<22}  AllReduce {:>8.4}s   best program {:>8.4}s  ({})  speedup {:>5.2}x  [{} programs, {} beat AllReduce]",
            placement.matrix.to_string(),
            placement.allreduce_measured,
            placement.optimal_measured(),
            placement
                .best_measured()
                .map(|p| p.signature())
                .unwrap_or_else(|| "AllReduce".into()),
            placement.speedup(),
            placement.num_programs,
            placement.programs_beating_allreduce(),
        );
    }
    println!();

    let best = result.best_overall().expect("at least one program");
    println!("Best placement + reduction strategy overall:");
    println!("  program  : {}", best.signature());
    println!("  steps    : {}", best.program);
    println!("  measured : {:.4}s", best.measured_seconds);
    println!("  predicted: {:.4}s", best.predicted_seconds);
    println!();
    println!(
        "The common optimal programs of Figure 10 — Reduce-AllReduce-Broadcast and \
         ReduceScatter-AllReduce-AllGather — appear among the synthesized programs:"
    );
    for signature in [
        "Reduce-AllReduce-Broadcast",
        "ReduceScatter-AllReduce-AllGather",
    ] {
        let found = result
            .placements
            .iter()
            .flat_map(|p| &p.programs)
            .any(|p| p.signature() == signature);
        println!(
            "  {signature}: {}",
            if found { "synthesized" } else { "not found" }
        );
    }
    Ok(())
}
