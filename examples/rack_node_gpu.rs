//! Placement selection on a 3-level rack / node / GPU hierarchy with
//! heterogeneous uplinks — the multi-node shape beyond the paper's two-level
//! presets (ROADMAP: "multi-node topologies beyond the presets").
//!
//! Two racks of two 8-GPU A100-style nodes sit behind an oversubscribed core
//! switch, so the bandwidth degrades level by level (NVSwitch ≫ NIC > core
//! switch). The example drives the experiment-session API end to end:
//!
//! * `P2::builder` with `RunMode::Shortlist` — the paper's deployment mode —
//!   plus bounded per-placement retention;
//! * a `RunObserver` counting streamed events from the parallel sweep;
//! * `SharedBoundObserver`, whose single-pass reduction-tree bound lets cheap
//!   placements prune expensive ones inside one sweep, deterministically for
//!   any thread count.
//!
//! Run with `cargo run --release --example rack_node_gpu`
//! `[-- --cost-model alpha-beta|loggp|calibrated]`.

use std::sync::atomic::{AtomicUsize, Ordering};

use p2::{
    cost_model_from_args, presets, NcclAlgo, ParallelismMatrix, RunMode, RunObserver,
    SharedBoundObserver, P2,
};

/// Counts sweep events to show the observer contract in action.
#[derive(Default)]
struct EventCounter {
    placements: AtomicUsize,
    retained: AtomicUsize,
}

impl RunObserver for EventCounter {
    fn on_placement_start(&self, _index: usize, _matrix: &ParallelismMatrix) -> Option<f64> {
        self.placements.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn on_program_retained(
        &self,
        _index: usize,
        _program: &p2::Program,
        _predicted_seconds: f64,
        _measured_seconds: f64,
    ) {
        self.retained.fetch_add(1, Ordering::Relaxed);
    }
}

fn main() -> Result<(), p2::P2Error> {
    let kind = cost_model_from_args();
    let system = presets::rack_node_gpu_system(2, 2, 8);
    println!(
        "System: {} ({} GPUs), hierarchy {:?}",
        system.name(),
        system.num_devices(),
        system.hierarchy().arities()
    );
    println!("Uplinks: core-switch 4 GB/s < NIC 8 GB/s << NVSwitch 270 GB/s per level\n");

    // Data parallelism of 4 and 8 parameter shards; the frequent reduction
    // runs along the sharding axis, so placements that spill it across racks
    // pay the oversubscribed core switch.
    let session = P2::builder(system)
        .parallelism_axes([4, 8])
        .reduction_axes([1])
        .algo(NcclAlgo::Ring)
        .bytes_per_device(64.0e6)
        .repeats(3)
        .keep_top(8)
        .cost_model_kind(kind)
        .mode(RunMode::Shortlist(10))
        .build()?;

    let counter = EventCounter::default();
    let result = session.run_observed(&counter)?;
    println!(
        "Shortlist run: {} placements, {} programs synthesized, {} retained ({} pruned)",
        counter.placements.load(Ordering::Relaxed),
        result.total_programs(),
        result.total_programs_retained(),
        result.total_programs_pruned(),
    );
    println!(
        "{:<24} {:>12} {:>12} {:>9}",
        "placement", "AllReduce", "best", "speedup"
    );
    for placement in &result.placements {
        println!(
            "{:<24} {:>12.4} {:>12.4} {:>8.2}x",
            placement.matrix.to_string(),
            placement.allreduce_measured,
            placement.optimal_measured(),
            placement.speedup(),
        );
    }
    let best = result.best_overall().expect("at least one program");
    println!(
        "\nBest placement + strategy: {} in {:.4}s\n",
        best.signature(),
        best.measured_seconds
    );

    // Cross-placement pruning inside one pass: each placement publishes its
    // predicted minimum into a reduction tree keyed by production order, and
    // later placements prune against the dyadic prefix below them — no
    // duplicate predict-only sweep, still deterministic for any thread count.
    let mut shared = SharedBoundObserver::new();
    let pruned = shared.run(&session)?;
    println!(
        "Single-pass shared-bound run: global predicted bound {:.4}s, retained {} (vs {}), \
         same optimum: {}",
        shared.bound().expect("bound seeded"),
        pruned.total_programs_retained(),
        result.total_programs_retained(),
        pruned.best_overall().map(|p| p.signature())
            == result.best_overall().map(|p| p.signature())
    );
    Ok(())
}
