//! `p2` — a reproduction of *"Synthesizing Optimal Parallelism Placement and
//! Reduction Strategies on Hierarchical Systems for Deep Learning"*
//! (MLSys 2022).
//!
//! This crate re-exports the whole public API of the workspace so downstream
//! users can depend on a single crate:
//!
//! * [`topology`] — hierarchical systems and interconnects,
//! * [`placement`] — parallelism matrices and placement enumeration,
//! * [`collectives`] — state matrices and the semantics of collectives,
//! * [`synthesis`] — the reduction DSL, synthesis hierarchies and the
//!   syntax-guided synthesizer,
//! * [`cost`] — the analytic cost model (the paper's simulator),
//! * [`exec`] — the discrete-event execution substrate (the measurement
//!   stand-in for the paper's GPU clusters),
//! * [`core`] — the end-to-end [`P2`] pipeline,
//! * [`hash`] — stable hashing and content-address digests,
//! * [`service`] — the planner service: content-addressed plan cache,
//!   single-flight dedup, fair admission, and the `plan_service` TCP front
//!   end.
//!
//! # Quickstart
//!
//! ```
//! use p2::{P2, presets, NcclAlgo};
//!
//! // The 16-GPU system of Figure 2a with data parallelism 4 and 4 parameter
//! // shards, reducing along the parameter-sharding axis.
//! let result = P2::builder(presets::figure2a_system())
//!     .parallelism_axes([4, 4])
//!     .reduction_axes([1])
//!     .algo(NcclAlgo::Ring)
//!     .bytes_per_device(1.0e8)
//!     .run()?;
//! let best = result.best_overall().expect("at least one program");
//! println!("best placement/program: {} in {:.3}s", best.signature(), best.measured_seconds);
//! # Ok::<(), p2::P2Error>(())
//! ```

#![deny(missing_docs)]

pub use p2_collectives as collectives;
pub use p2_core as core;
pub use p2_cost as cost;
pub use p2_exec as exec;
pub use p2_hash as hash;
pub use p2_placement as placement;
pub use p2_service as service;
pub use p2_synthesis as synthesis;
pub use p2_topology as topology;

pub use p2_collectives::{Collective, State};
pub use p2_core::{
    run_batch, top_k_accuracy, BatchOptions, BatchOutcome, ExperimentResult, P2Builder, P2Config,
    P2Error, PendingSweep, PlacementEvaluation, ProgramEvaluation, ProgressObserver, RunMode,
    RunObserver, SharedBoundObserver, SharedBoundTree, SlotBoundObserver, TableSnapshot,
    TableStore, TableStoreStats, TopKReport, TwoPassSharedBound, P2,
};
pub use p2_cost::{
    cost_model_from_args, AlphaBetaModel, CacheStats, CachedCostModel, CalibratedModel,
    CostAccumulator, CostBreakdown, CostModel, CostModelKind, LogGpModel, NcclAlgo, StepClass,
    StepCost,
};
pub use p2_exec::{ExecConfig, Executor};
pub use p2_hash::{stable_digest128, stable_hash64, Fingerprint, FxHashMap, FxHasher};
pub use p2_placement::{
    enumerate_matrices, for_each_matrix, MatrixControl, MatrixSink, ParallelismMatrix,
};
pub use p2_service::{
    Plan, PlanEntry, PlanRequest, PlanResponse, PlanSource, PlanStats, PlanStore, Planner,
    PlannerConfig, PlannerStats, ServiceError,
};
pub use p2_synthesis::{
    baseline_allreduce, Form, HierarchyKind, Instruction, LoweredProgram, MemoBank, MemoSlab,
    Program, ProgramSink, SinkControl, SynthesisStats, Synthesizer,
};
pub use p2_topology::presets;
pub use p2_topology::{Hierarchy, Interconnect, Level, SystemTopology};
